//! Kill-and-recover chaos harness for the durable serving tier.
//!
//! [`run_soak`] drives a durable single-engine session with an adversarial
//! update stream — hub churn on the power-law head, delete-heavy phases,
//! burst/quiescent alternation — and repeatedly **kills** it by arming one
//! of the [`crate::durability`] fail points, so crashes land before, inside
//! and after the WAL/checkpoint/publish critical sections. After every kill
//! it recovers the durability directory into a fresh engine and verifies
//! the recovered graph, store and topology epoch **bit-identical** against
//! a reference engine that replayed every durable window from bootstrap.
//!
//! The two-shard bit-identity story is pinned by `tests/durability.rs`; the
//! soak's job is wall-clock adversity on one engine: many cycles, random
//! crash sites, random crash offsets, and a report
//! ([`SoakReport::to_json`], the `BENCH_soak.json` artifact) of recoveries,
//! replayed windows, recovery latency and sustained epochs/sec.
//!
//! The `serve_soak` binary is the CLI front end (`--short`,
//! `--kill-every`, `--json`); see the README's durability section for the
//! environment knobs.

use crate::durability::{
    read_wal, DurabilityConfig, FailPoints, FsyncPolicy, RecoveryReport, FP_AFTER_PUBLISH,
    FP_CKPT_MID, FP_WAL_AFTER_APPEND, FP_WAL_BEFORE_APPEND, FP_WAL_TORN_APPEND,
};
use crate::metrics::ServeMetrics;
use crate::scheduler::{spawn, ServeConfig, Submission, UpdateScheduler};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ripple_core::{RippleConfig, RippleEngine};
use ripple_gnn::layer_wise::full_inference;
use ripple_gnn::{EmbeddingStore, GnnModel, Workload};
use ripple_graph::synth::DatasetSpec;
use ripple_graph::{DynamicGraph, GraphUpdate, VertexId};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fail-point sites the harness rotates kills through — collectively
/// they land crashes before, inside and after every critical section of the
/// durability path.
const KILL_SITES: [&str; 5] = [
    FP_WAL_BEFORE_APPEND,
    FP_WAL_TORN_APPEND,
    FP_WAL_AFTER_APPEND,
    FP_AFTER_PUBLISH,
    FP_CKPT_MID,
];

/// Configuration of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Vertices of the synthetic power-law graph.
    pub vertices: usize,
    /// Average in-degree of the graph.
    pub avg_degree: f64,
    /// Feature width.
    pub feature_dim: usize,
    /// Output classes (= final embedding width).
    pub classes: usize,
    /// Raw updates per generated burst (one coalescing window's worth or
    /// more).
    pub updates_per_burst: usize,
    /// Coalescing size window of the driven session.
    pub max_batch: usize,
    /// Checkpoint cadence in logged windows.
    pub checkpoint_every: u64,
    /// Fsync policy of the WAL and checkpoints.
    pub fsync: FsyncPolicy,
    /// How long a session lives before the harness arms a kill.
    pub kill_every: Duration,
    /// Minimum kill-and-recover cycles before the run may stop.
    pub min_cycles: u64,
    /// Minimum wall-clock length of the run.
    pub total_duration: Duration,
    /// Durability directory (wiped at the start of the run).
    pub dir: PathBuf,
    /// Seed for the graph, the stream phases and the crash offsets.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            vertices: 1_000,
            avg_degree: 6.0,
            feature_dim: 12,
            classes: 6,
            updates_per_burst: 96,
            max_batch: 32,
            checkpoint_every: 8,
            fsync: FsyncPolicy::Always,
            kill_every: Duration::from_secs(5),
            min_cycles: 4,
            total_duration: Duration::from_secs(120),
            dir: std::env::temp_dir().join(format!("ripple-soak-{}", std::process::id())),
            seed: 42,
        }
    }
}

impl SoakConfig {
    /// The CI smoke shape (`serve_soak --short`): a small graph and a short
    /// wall-clock budget that still forces several kill-and-recover cycles.
    pub fn short() -> Self {
        SoakConfig {
            vertices: 300,
            feature_dim: 8,
            classes: 4,
            updates_per_burst: 48,
            max_batch: 16,
            checkpoint_every: 4,
            fsync: FsyncPolicy::Never,
            kill_every: Duration::from_secs(2),
            min_cycles: 2,
            total_duration: Duration::from_secs(6),
            ..Default::default()
        }
    }

    /// Applies the durability environment knobs on top of `self`:
    /// `RIPPLE_SERVE_WAL_DIR` (directory), `RIPPLE_SERVE_CKPT_EVERY`
    /// (checkpoint cadence) and `RIPPLE_SERVE_FSYNC` (`always` / `never`).
    pub fn with_env(mut self) -> Self {
        if let Ok(dir) = std::env::var("RIPPLE_SERVE_WAL_DIR") {
            if !dir.is_empty() {
                self.dir = PathBuf::from(dir);
            }
        }
        if let Ok(every) = std::env::var("RIPPLE_SERVE_CKPT_EVERY") {
            if let Ok(every) = every.parse() {
                self.checkpoint_every = every;
            }
        }
        if let Ok(policy) = std::env::var("RIPPLE_SERVE_FSYNC") {
            match policy.to_lowercase().as_str() {
                "never" => self.fsync = FsyncPolicy::Never,
                "always" => self.fsync = FsyncPolicy::Always,
                _ => {}
            }
        }
        self
    }
}

/// Result of one soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Kill-and-recover cycles completed.
    pub cycles: u64,
    /// Recoveries whose recovered state failed bit-identity verification
    /// (must be 0).
    pub verification_failures: u64,
    /// Recoveries that restored a checkpoint (vs full WAL replay).
    pub from_checkpoint: u64,
    /// WAL windows replayed across all recoveries.
    pub replayed_windows: u64,
    /// Windows durably logged over the whole run.
    pub windows_logged: u64,
    /// Torn/corrupt bytes dropped from WAL tails across all recoveries.
    pub dropped_tail_bytes: u64,
    /// Raw updates offered across all sessions.
    pub updates_offered: u64,
    /// Epochs published across all sessions.
    pub epochs: u64,
    /// Epochs per wall-clock second, sustained across kills.
    pub epochs_per_sec: f64,
    /// Mean recovery wall-clock.
    pub mean_recovery: Duration,
    /// Worst recovery wall-clock.
    pub max_recovery: Duration,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
}

impl SoakReport {
    /// `true` when every recovery reproduced the reference state bit for
    /// bit and at least the demanded number of cycles ran.
    pub fn passed(&self, min_cycles: u64) -> bool {
        self.verification_failures == 0 && self.cycles >= min_cycles
    }

    /// The `BENCH_soak.json` artifact (hand-rolled: the offline serde shim
    /// has no serialiser).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"serve_soak\",\n");
        out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
        out.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        out.push_str(&format!(
            "  \"verification_failures\": {},\n",
            self.verification_failures
        ));
        out.push_str(&format!(
            "  \"from_checkpoint\": {},\n",
            self.from_checkpoint
        ));
        out.push_str(&format!(
            "  \"replayed_windows\": {},\n",
            self.replayed_windows
        ));
        out.push_str(&format!("  \"windows_logged\": {},\n", self.windows_logged));
        out.push_str(&format!(
            "  \"dropped_tail_bytes\": {},\n",
            self.dropped_tail_bytes
        ));
        out.push_str(&format!(
            "  \"updates_offered\": {},\n",
            self.updates_offered
        ));
        out.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        out.push_str(&format!(
            "  \"epochs_per_sec\": {:.3},\n",
            self.epochs_per_sec
        ));
        out.push_str(&format!(
            "  \"mean_recovery_ms\": {:.3},\n",
            self.mean_recovery.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  \"max_recovery_ms\": {:.3},\n",
            self.max_recovery.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  \"elapsed_ms\": {:.3},\n",
            self.elapsed.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "  \"passed\": {}\n",
            self.verification_failures == 0
        ));
        out.push('}');
        out.push('\n');
        out
    }
}

impl std::fmt::Display for SoakReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>7} {:>9} {:>10} {:>9} {:>10} {:>10} {:>12} {:>12}",
            "cycles",
            "verified",
            "from-ckpt",
            "replayed",
            "windows",
            "epochs/s",
            "mean rec ms",
            "max rec ms"
        )?;
        writeln!(
            f,
            "{:>7} {:>9} {:>10} {:>9} {:>10} {:>10.2} {:>12.3} {:>12.3}",
            self.cycles,
            self.cycles - self.verification_failures,
            self.from_checkpoint,
            self.replayed_windows,
            self.windows_logged,
            self.epochs_per_sec,
            self.mean_recovery.as_secs_f64() * 1e3,
            self.max_recovery.as_secs_f64() * 1e3
        )?;
        write!(
            f,
            "updates offered {}; epochs {}; dropped tail bytes {}; elapsed {:.2}s; verification failures {}",
            self.updates_offered,
            self.epochs,
            self.dropped_tail_bytes,
            self.elapsed.as_secs_f64(),
            self.verification_failures
        )
    }
}

/// The adversarial stream phases the generator cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Edge churn concentrated on a fixed hub set — the power-law head,
    /// where every touched window dirties large frontiers.
    HubChurn,
    /// Mostly deletions, shrinking the edge set the run built up.
    DeleteHeavy,
    /// Uniform mixed traffic at full rate.
    Burst,
    /// A trickle with a pause, so time-window flushes and empty windows
    /// happen too.
    Quiescent,
}

const PHASES: [Phase; 4] = [
    Phase::HubChurn,
    Phase::Burst,
    Phase::DeleteHeavy,
    Phase::Quiescent,
];

/// Shadow of the durable graph state, from which only valid updates are
/// generated (no duplicate adds, no deletes of absent edges).
struct Shadow {
    n: u32,
    feature_dim: usize,
    present: HashSet<(u32, u32)>,
    edges: Vec<(u32, u32)>,
}

impl Shadow {
    fn from_graph(graph: &DynamicGraph, feature_dim: usize) -> Self {
        let n = graph.num_vertices() as u32;
        let mut present = HashSet::new();
        let mut edges = Vec::new();
        for u in 0..n {
            for v in graph.out_neighbors(VertexId(u)) {
                present.insert((u, v.0));
                edges.push((u, v.0));
            }
        }
        Shadow {
            n,
            feature_dim,
            present,
            edges,
        }
    }

    fn add(&mut self, rng: &mut SmallRng, src_pool: u32) -> Option<GraphUpdate> {
        for _ in 0..8 {
            let src = rng.gen_range(0u32..src_pool.min(self.n));
            let dst = rng.gen_range(0u32..self.n);
            if src != dst && !self.present.contains(&(src, dst)) {
                self.present.insert((src, dst));
                self.edges.push((src, dst));
                return Some(GraphUpdate::add_edge(VertexId(src), VertexId(dst)));
            }
        }
        None
    }

    fn delete(&mut self, rng: &mut SmallRng) -> Option<GraphUpdate> {
        if self.edges.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..self.edges.len());
        let (src, dst) = self.edges.swap_remove(i);
        self.present.remove(&(src, dst));
        Some(GraphUpdate::delete_edge(VertexId(src), VertexId(dst)))
    }

    fn rewrite(&self, rng: &mut SmallRng, vertex_pool: u32) -> GraphUpdate {
        let v = rng.gen_range(0u32..vertex_pool.min(self.n));
        let features = (0..self.feature_dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        GraphUpdate::update_feature(VertexId(v), features)
    }

    /// One burst of valid updates under `phase`.
    fn burst(&mut self, rng: &mut SmallRng, phase: Phase, len: usize) -> Vec<GraphUpdate> {
        let hubs = 8u32;
        let len = if phase == Phase::Quiescent { 4 } else { len };
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let update = match phase {
                Phase::HubChurn => match rng.gen_range(0u32..4) {
                    0 => Some(self.rewrite(rng, hubs)),
                    1 => self.delete(rng),
                    _ => self.add(rng, hubs),
                },
                Phase::DeleteHeavy => {
                    if rng.gen_range(0u32..10) < 7 {
                        self.delete(rng)
                    } else {
                        self.add(rng, self.n)
                    }
                }
                Phase::Burst | Phase::Quiescent => match rng.gen_range(0u32..3) {
                    0 => Some(self.rewrite(rng, self.n)),
                    1 => self.delete(rng),
                    _ => self.add(rng, self.n),
                },
            };
            match update {
                Some(u) => out.push(u),
                // The pool ran dry for this op (e.g. a delete on an empty
                // edge set); fall back to a rewrite so bursts always fill.
                None => out.push(self.rewrite(rng, self.n)),
            }
        }
        out
    }
}

/// Runs the kill-and-recover soak and reports what it measured.
///
/// # Panics
///
/// Panics on harness errors (dataset generation, bootstrap inference, an
/// unreadable durability directory). Verification *failures* do not panic —
/// they are counted in the report so the binary can assert on them after
/// writing the artifact.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    let spec = DatasetSpec::custom(
        config.vertices,
        config.avg_degree,
        config.feature_dim,
        config.classes,
    );
    let graph = spec.generate(config.seed).expect("dataset generation");
    let model = Workload::GcS
        .build_model(
            config.feature_dim,
            2 * config.feature_dim,
            config.classes,
            2,
            config.seed ^ 0x77,
        )
        .expect("model construction");
    let store = full_inference(&graph, &model).expect("bootstrap inference");
    let bootstrap = |g: &DynamicGraph, m: &GnnModel, s: &EmbeddingStore| {
        RippleEngine::new(g.clone(), m.clone(), s.clone(), RippleConfig::default())
            .expect("bootstrap engine")
    };

    // Fresh durability directory: a soak run owns its state end to end.
    let _ = std::fs::remove_dir_all(&config.dir);
    let fail_points = FailPoints::new();
    let durability = DurabilityConfig::new(&config.dir)
        .checkpoint_every(config.checkpoint_every)
        .fsync(config.fsync)
        // One segment for the whole run: the reference replay below reads
        // every durable window from the start of the log, so nothing may be
        // pruned out from under it. Rotation itself is pinned by the
        // durability unit tests.
        .segment_bytes(1 << 30)
        .fail_points(fail_points.clone());
    let serve_config = ServeConfig::builder()
        .max_batch(config.max_batch)
        .durability(durability)
        .build()
        .expect("soak serve config");

    // The reference: every durable window replayed from bootstrap, advanced
    // after each kill from a read-only WAL scan. Recovery must land every
    // session bit-identical to this engine.
    let mut reference = bootstrap(&graph, &model, &store);
    let mut next_ref_window = 1u64;
    let mut shadow = Shadow::from_graph(&graph, config.feature_dim);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x50a4_c4a0);

    let started = Instant::now();
    let mut cycles = 0u64;
    let mut verification_failures = 0u64;
    let mut from_checkpoint = 0u64;
    let mut replayed_windows = 0u64;
    let mut dropped_tail_bytes = 0u64;
    let mut updates_offered = 0u64;
    let mut epochs = 0u64;
    let mut recovery_total = Duration::ZERO;
    let mut max_recovery = Duration::ZERO;

    loop {
        // ------------------------------------------------------------------
        // Session: spawn (recovering whatever the directory holds), drive
        // adversarial phases, then arm a kill and run into it.
        // ------------------------------------------------------------------
        let handle = spawn(bootstrap(&graph, &model, &store), serve_config.clone())
            .expect("soak session must recover and spawn");
        let client = handle.client();
        let metrics = handle.metrics();
        let session_started = Instant::now();
        let mut armed = false;
        let mut phase_idx = rng.gen_range(0..PHASES.len());
        loop {
            let phase = PHASES[phase_idx % PHASES.len()];
            phase_idx += 1;
            let burst = shadow.burst(&mut rng, phase, config.updates_per_burst);
            let mut closed = false;
            for update in burst {
                updates_offered += 1;
                if client.submit(update) == Submission::Closed {
                    closed = true;
                    break;
                }
            }
            let flushed = handle.flush();
            if closed || flushed.is_none() || handle.failure().is_some() {
                break;
            }
            if phase == Phase::Quiescent {
                std::thread::sleep(Duration::from_millis(5));
            }
            if !armed && session_started.elapsed() >= config.kill_every {
                // Kill: one of the critical-section fail points, offset a
                // random number of hits into its site.
                fail_points.arm(
                    KILL_SITES[(cycles as usize) % KILL_SITES.len()],
                    rng.gen_range(0u64..3),
                );
                armed = true;
            }
        }
        fail_points.disarm_all();
        epochs += metrics.epochs();
        // The kill: abandon the poisoned session without a clean stop. The
        // typed failure is the expected outcome; a clean shutdown here
        // would mean the armed fail point never fired.
        let _ = handle.shutdown();
        cycles += 1;

        // ------------------------------------------------------------------
        // Advance the reference over the windows that became durable, then
        // resync the generator's shadow to the durable graph (updates lost
        // in the crash must not leak into later bursts).
        // ------------------------------------------------------------------
        let scan = read_wal(&config.dir).expect("scanning the soak WAL");
        for frame in &scan.frames {
            if frame.window_seq < next_ref_window {
                continue;
            }
            if !frame.batch.is_empty() {
                reference
                    .process_batch(&frame.batch)
                    .expect("reference replay of a durable window");
            }
            next_ref_window = frame.window_seq + 1;
        }
        shadow = Shadow::from_graph(reference.graph(), config.feature_dim);

        // ------------------------------------------------------------------
        // Recover-and-verify: recovery into a fresh engine must reproduce
        // the reference bit for bit.
        // ------------------------------------------------------------------
        let report: Option<RecoveryReport> = match UpdateScheduler::new(
            bootstrap(&graph, &model, &store),
            serve_config.clone(),
            Arc::new(ServeMetrics::new()),
        ) {
            Ok((scheduler, _reader)) => {
                let report = scheduler.recovery_report();
                let recovered = scheduler.into_engine();
                let identical = recovered.store() == reference.store()
                    && recovered.graph() == reference.graph()
                    && recovered.topology_epoch() == reference.topology_epoch();
                if !identical {
                    verification_failures += 1;
                }
                report
            }
            Err(_) => {
                verification_failures += 1;
                None
            }
        };
        if let Some(report) = report {
            from_checkpoint += u64::from(report.from_checkpoint);
            replayed_windows += report.replayed_windows;
            dropped_tail_bytes += report.dropped_tail_bytes;
            recovery_total += report.recovery_time;
            max_recovery = max_recovery.max(report.recovery_time);
        }

        if cycles >= config.min_cycles && started.elapsed() >= config.total_duration {
            break;
        }
    }

    let elapsed = started.elapsed();
    let _ = std::fs::remove_dir_all(&config.dir);
    SoakReport {
        cycles,
        verification_failures,
        from_checkpoint,
        replayed_windows,
        windows_logged: next_ref_window.saturating_sub(1),
        dropped_tail_bytes,
        updates_offered,
        epochs,
        epochs_per_sec: epochs as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_recovery: recovery_total
            .checked_div(cycles.max(1) as u32)
            .unwrap_or(Duration::ZERO),
        max_recovery,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soak_survives_two_kills_bit_identically() {
        let config = SoakConfig {
            vertices: 150,
            avg_degree: 5.0,
            feature_dim: 6,
            classes: 4,
            updates_per_burst: 24,
            max_batch: 8,
            checkpoint_every: 3,
            fsync: FsyncPolicy::Never,
            kill_every: Duration::from_millis(20),
            min_cycles: 2,
            total_duration: Duration::from_millis(50),
            dir: std::env::temp_dir().join(format!("ripple-soak-test-{}", std::process::id())),
            seed: 9,
        };
        let report = run_soak(&config);
        assert!(report.passed(2), "{report}");
        assert!(report.cycles >= 2);
        assert_eq!(report.verification_failures, 0);
        assert!(report.windows_logged >= 1, "kills must land after logging");
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve_soak\""));
        assert!(json.contains("\"passed\": true"));
        assert!(report.to_string().contains("cycles"));
    }
}
