//! The topology-agnostic serving frontend.
//!
//! [`ServeFrontend`] is the one contract every serving session satisfies,
//! whether one engine processes the whole graph ([`crate::spawn`] →
//! [`ServeHandle`]) or a hash-partitioned tier of shard engines serves it
//! ([`crate::spawn_sharded`] → [`ShardedServeHandle`]). Load generators,
//! examples and the consistency suites are written against this trait and
//! run unchanged on either topology; only bootstrap picks the shape.
//!
//! The trait's surface is deliberately the intersection that both
//! topologies satisfy with identical semantics:
//!
//! * [`ServeFrontend::client`] yields a [`ServeClient`] — the write path —
//!   which either feeds one scheduler queue or hash-routes across shard
//!   queues; producers observe the same [`Submission`] outcomes either way.
//! * [`ServeFrontend::query_service`] yields a [`crate::QueryService`]
//!   whose stamps degrade gracefully: single-engine responses carry a
//!   scalar epoch, sharded responses add the owning shard (point reads) or
//!   the per-shard epoch vector (whole-graph reads).
//! * [`ServeFrontend::quiesce`] is the portable drain: for one engine it is
//!   a flush; for a sharded tier it loops flush rounds until no cross-shard
//!   delta is in flight.

use crate::index::IndexStats;
use crate::metrics::ServeMetrics;
use crate::query::QueryService;
use crate::router::ShardRouter;
use crate::scheduler::{FlushLog, ServeError, ServeHandle, Submission, UpdateClient};
use crate::shard::{ShardedEngines, ShardedServeHandle};
use ripple_graph::GraphUpdate;
use std::sync::Arc;

/// The write path of a serving session: a single-queue client or a
/// hash-routing shard client, behind one `submit` surface.
#[derive(Debug, Clone)]
pub enum ServeClient {
    /// Producer handle of a single-engine session.
    Single(UpdateClient),
    /// Hash-routing producer handle of a sharded session.
    Sharded(ShardRouter),
}

impl ServeClient {
    /// Submits one update, honouring the session's backpressure policy.
    pub fn submit(&self, update: GraphUpdate) -> Submission {
        match self {
            ServeClient::Single(client) => client.submit(update),
            ServeClient::Sharded(router) => router.submit(update),
        }
    }

    /// Submits every update of a batch in order; stops at the first
    /// non-enqueued outcome and returns it together with the number of
    /// accepted updates.
    pub fn submit_all<I: IntoIterator<Item = GraphUpdate>>(
        &self,
        updates: I,
    ) -> (usize, Submission) {
        match self {
            ServeClient::Single(client) => client.submit_all(updates),
            ServeClient::Sharded(router) => router.submit_all(updates),
        }
    }
}

/// A running serving session, single-engine or sharded.
///
/// Implemented by [`ServeHandle`] (one [`ripple_core::StreamingEngine`]
/// behind one scheduler) and [`ShardedServeHandle`] (one
/// [`ripple_core::ShardEngine`] per partition). See the [module
/// docs](self) for the design rationale; every method documents any
/// topology-specific nuance.
pub trait ServeFrontend {
    /// What [`ServeFrontend::shutdown`] recovers: the engine itself for a
    /// single-engine session, the gathered shard engines for a sharded one.
    type Engine;

    /// A new producer handle (cheap; every writer thread should own one).
    fn client(&self) -> ServeClient;

    /// A new query handle (cheap; every reader thread should own one).
    fn query_service(&self) -> QueryService;

    /// The session's shared metrics. Sharded sessions aggregate across
    /// shards — e.g. an edge update owned by two shards counts twice in
    /// both `enqueued` and `applied`, keeping the two in balance.
    fn metrics(&self) -> Arc<ServeMetrics>;

    /// Forces the pending window(s) closed and returns the published epoch
    /// — the minimum per-shard epoch for a sharded session, whose
    /// cross-shard deltas may still be in flight afterwards. `None` once
    /// the session has stopped.
    fn flush(&self) -> Option<u64>;

    /// Flushes until the session is fully drained: every accepted update
    /// applied *and* (sharded) no cross-shard delta in flight.
    ///
    /// # Errors
    ///
    /// The session's typed terminal failure once it has stopped abnormally:
    /// [`ServeError::Engine`] / [`ServeError::Wal`] /
    /// [`ServeError::SchedulerPanicked`] for a single-engine session,
    /// [`ServeError::ShardFailed`] naming the failed shard for a sharded
    /// one.
    fn quiesce(&self) -> crate::Result<u64>;

    /// The flush logs recorded under [`crate::ServeConfig::record_batches`]:
    /// one per shard (indexed by partition), one total for a single-engine
    /// session, empty when recording is off.
    fn flush_logs(&self) -> Vec<FlushLog>;

    /// Number of engine shards serving this session (1 when unsharded).
    fn num_shards(&self) -> usize;

    /// Maintenance counters of the session's IVF top-k index (summed across
    /// shards), or `None` when the session was spawned with
    /// [`crate::ServeConfigBuilder::no_index`].
    fn index_stats(&self) -> Option<IndexStats>;

    /// Stops the session and recovers the engine state with every accepted
    /// update applied (sharded sessions quiesce first).
    ///
    /// # Errors
    ///
    /// Returns the error that poisoned the session, if any.
    fn shutdown(self) -> Result<Self::Engine, ServeError>
    where
        Self: Sized;
}

impl<E> ServeFrontend for ServeHandle<E> {
    type Engine = E;

    fn client(&self) -> ServeClient {
        ServeClient::Single(ServeHandle::client(self))
    }

    fn query_service(&self) -> QueryService {
        ServeHandle::query_service(self)
    }

    fn metrics(&self) -> Arc<ServeMetrics> {
        ServeHandle::metrics(self)
    }

    fn flush(&self) -> Option<u64> {
        ServeHandle::flush(self)
    }

    fn quiesce(&self) -> crate::Result<u64> {
        // One queue, one engine: a flush *is* a full drain — every update
        // accepted before it is absorbed first (FIFO), and there is no
        // cross-shard traffic.
        ServeHandle::flush(self)
            .ok_or_else(|| ServeHandle::failure(self).unwrap_or(ServeError::SchedulerPanicked))
    }

    fn flush_logs(&self) -> Vec<FlushLog> {
        ServeHandle::flush_log(self).into_iter().collect()
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn index_stats(&self) -> Option<IndexStats> {
        ServeHandle::index_stats(self)
    }

    fn shutdown(self) -> Result<E, ServeError> {
        ServeHandle::shutdown(self)
    }
}

impl ServeFrontend for ShardedServeHandle {
    type Engine = ShardedEngines;

    fn client(&self) -> ServeClient {
        ServeClient::Sharded(ShardedServeHandle::client(self))
    }

    fn query_service(&self) -> QueryService {
        ShardedServeHandle::query_service(self)
    }

    fn metrics(&self) -> Arc<ServeMetrics> {
        ShardedServeHandle::metrics(self)
    }

    fn flush(&self) -> Option<u64> {
        ShardedServeHandle::flush(self)
    }

    fn quiesce(&self) -> crate::Result<u64> {
        ShardedServeHandle::quiesce(self)
    }

    fn flush_logs(&self) -> Vec<FlushLog> {
        ShardedServeHandle::flush_logs(self)
    }

    fn num_shards(&self) -> usize {
        ShardedServeHandle::num_shards(self)
    }

    fn index_stats(&self) -> Option<IndexStats> {
        ShardedServeHandle::index_stats(self)
    }

    fn shutdown(self) -> Result<ShardedEngines, ServeError> {
        ShardedServeHandle::shutdown(self)
    }
}
