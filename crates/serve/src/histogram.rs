//! Bounded HDR-style latency histogram for the load generator.
//!
//! The original loadgen kept every read latency in an in-memory `Vec` and
//! sorted it at the end — fine for short smoke runs, but memory grows
//! linearly with read count, which rules out multi-minute soak runs at
//! millions of reads per minute. [`LatencyHistogram`] replaces it with the
//! classic HDR bucketing scheme: exponential magnitude buckets, each split
//! into `2^PRECISION_BITS` linear sub-buckets, giving a fixed ~16 KiB
//! footprint, O(1) recording and a bounded relative quantile error of
//! `2^-PRECISION_BITS` (≈3%) — far below the run-to-run noise of any
//! wall-clock latency measurement.

use std::time::Duration;

/// Sub-bucket resolution: each power-of-two magnitude splits into
/// `2^PRECISION_BITS` linear sub-buckets, bounding the relative quantile
/// error at `2^-PRECISION_BITS`.
const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << PRECISION_BITS; // 32
/// Magnitudes 0..64 cover the full u64 nanosecond range (≈584 years).
const MAGNITUDES: usize = 64;
const BUCKETS: usize = MAGNITUDES * SUB_BUCKETS;

/// A constant-memory latency histogram with bounded relative error.
///
/// # Example
///
/// ```
/// use ripple_serve::histogram::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for us in [10u64, 20, 30, 40, 1000] {
///     h.record(Duration::from_micros(us));
/// }
/// assert_eq!(h.len(), 5);
/// let p50 = h.percentile(50.0);
/// assert!(p50 >= Duration::from_micros(29) && p50 <= Duration::from_micros(31));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    /// Exact maximum, so the top percentiles never under-report the tail.
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The bucket index of a nanosecond value.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        // Values below 2^PRECISION_BITS are exact: one bucket per value.
        return nanos as usize;
    }
    let magnitude = 63 - nanos.leading_zeros(); // >= PRECISION_BITS
    let sub = (nanos >> (magnitude - PRECISION_BITS)) as usize & (SUB_BUCKETS - 1);
    ((magnitude - PRECISION_BITS + 1) as usize) * SUB_BUCKETS + sub
}

/// The largest nanosecond value a bucket covers (its inclusive upper edge),
/// so percentiles report conservative (never under-estimated) latencies.
#[inline]
fn bucket_upper_edge(bucket: usize) -> u64 {
    if bucket < SUB_BUCKETS {
        return bucket as u64;
    }
    let magnitude = (bucket / SUB_BUCKETS - 1) as u32 + PRECISION_BITS;
    let sub = (bucket % SUB_BUCKETS) as u64;
    let base = 1u64 << magnitude;
    let step = 1u64 << (magnitude - PRECISION_BITS);
    base + (sub + 1) * step - 1
}

impl LatencyHistogram {
    /// An empty histogram. Allocates its fixed bucket table once; recording
    /// never allocates.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
            max_nanos: 0,
        }
    }

    /// Records one sample in O(1), constant memory.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(nanos)] += 1;
        self.total += 1;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Folds another histogram into this one (used to merge per-reader
    /// histograms into the run total).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// The nearest-rank `p`-th percentile (0–100), within the histogram's
    /// relative error bound; the 100th percentile reports the exact
    /// maximum. [`Duration::ZERO`] when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        // The same nearest-rank arithmetic the Vec-based sampler used:
        // index round(p/100 * (n-1)) of the sorted samples.
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (self.total as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > rank {
                // The top bucket's edge may overshoot the true maximum;
                // clamp so no percentile exceeds an observed value.
                return Duration::from_nanos(bucket_upper_edge(bucket).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Heap bytes held by the bucket table — constant for the histogram's
    /// lifetime, regardless of how many samples are recorded.
    pub fn memory_bytes(&self) -> usize {
        BUCKETS * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for n in 0..SUB_BUCKETS as u64 {
            h.record(Duration::from_nanos(n));
        }
        assert_eq!(h.len(), SUB_BUCKETS as u64);
        assert_eq!(h.percentile(0.0), Duration::from_nanos(0));
        assert_eq!(h.percentile(100.0), Duration::from_nanos(31));
    }

    #[test]
    fn relative_error_is_bounded() {
        // Any single recorded value must be reported within the 2^-5
        // relative error bound at every percentile.
        for &nanos in &[100u64, 999, 12_345, 1_000_000, 87_654_321] {
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(nanos));
            for p in [0.0, 50.0, 99.0, 100.0] {
                let reported = h.percentile(p).as_nanos() as u64;
                assert!(
                    reported >= nanos && reported as f64 <= nanos as f64 * (1.0 + 1.0 / 32.0),
                    "value {nanos} reported as {reported} at p{p}"
                );
            }
        }
    }

    #[test]
    fn percentiles_are_monotone_and_match_nearest_rank() {
        let mut h = LatencyHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        // A mixed distribution: microseconds with a millisecond tail.
        for i in 0..1000u64 {
            let nanos = 1_000 + i * 37;
            h.record(Duration::from_nanos(nanos));
            exact.push(nanos);
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(5));
        }
        exact.extend(std::iter::repeat_n(5_000_000u64, 10));
        exact.sort_unstable();
        let mut last = Duration::ZERO;
        for p in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let got = h.percentile(p);
            assert!(got >= last, "percentiles must be monotone");
            last = got;
            let rank = ((p / 100.0) * (exact.len() as f64 - 1.0)).round() as usize;
            let want = exact[rank] as f64;
            let got_ns = got.as_nanos() as f64;
            assert!(
                got_ns >= want * (1.0 - 1.0 / 32.0) && got_ns <= want * (1.0 + 1.0 / 32.0),
                "p{p}: got {got_ns}, exact {want}"
            );
        }
        assert_eq!(h.percentile(100.0), Duration::from_millis(5));
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), Duration::from_micros(1000));
        assert!(a.percentile(50.0) >= Duration::from_micros(969));
    }

    #[test]
    fn memory_is_constant() {
        let mut h = LatencyHistogram::new();
        let before = h.memory_bytes();
        for i in 0..100_000u64 {
            h.record(Duration::from_nanos(i * 13));
        }
        assert_eq!(h.memory_bytes(), before, "recording must not grow memory");
        assert!(before <= 32 * 1024, "footprint stays bounded: {before}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }
}
