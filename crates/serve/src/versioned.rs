//! Epoch-versioned embedding-store snapshots behind an `Arc` swap.
//!
//! The serving layer separates one **publisher** (the scheduler thread, which
//! owns the engine) from many **readers** (query threads). After every
//! committed batch the publisher refreshes a snapshot of the engine's store
//! and publishes it under the next epoch number; readers resolve queries
//! against whichever published snapshot their handle currently caches and
//! never observe a half-propagated store.
//!
//! # Read path
//!
//! [`SnapshotReader::snapshot`] is **lock-free in steady state**: it performs
//! one atomic epoch load and, only when a newer epoch was published since the
//! last call, re-clones the current `Arc` under a mutex whose critical
//! section is a pointer swap (the publisher never holds it while the engine
//! propagates). Readers therefore never block on the engine, and a reader
//! that does nothing keeps serving its cached epoch indefinitely.
//!
//! # Publish path (double buffering)
//!
//! Publishing epoch `n+1` retires the epoch-`n` snapshot. The publisher keeps
//! the retired `Arc`; by the time epoch `n+2` is published, steady-state
//! readers have moved off epoch `n`, so [`Arc::try_unwrap`] reclaims its
//! buffers and [`ripple_gnn::EmbeddingStore::copy_from`] refreshes them
//! **without allocating** — a slow reader still holding the old epoch simply
//! forces one fresh copy for that publication.

use ripple_gnn::EmbeddingStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published, immutable snapshot of the embedding store.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    applied_seq: u64,
    store: EmbeddingStore,
}

impl EpochSnapshot {
    /// The epoch this snapshot was published at (0 = the bootstrap store).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of accepted raw updates reflected in this snapshot, counting
    /// updates that coalescing merged or cancelled before the engine saw
    /// them.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// The embeddings as of this epoch.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }
}

/// Shared state between the publisher and every reader handle.
#[derive(Debug)]
pub struct VersionedStore {
    /// Mirror of `current`'s epoch, so readers detect staleness of their
    /// cached handle with a single atomic load.
    epoch: AtomicU64,
    /// The latest published snapshot. The mutex guards only the `Arc` clone
    /// / swap (a pointer operation), never the store contents.
    current: Mutex<Arc<EpochSnapshot>>,
}

impl VersionedStore {
    /// Publishes `bootstrap` as epoch 0 and returns the (unique) publisher
    /// plus a first reader handle; further readers are cloned from either.
    pub fn bootstrap(bootstrap: &EmbeddingStore) -> (SnapshotPublisher, SnapshotReader) {
        let initial = Arc::new(EpochSnapshot {
            epoch: 0,
            applied_seq: 0,
            store: bootstrap.clone(),
        });
        let shared = Arc::new(VersionedStore {
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::clone(&initial)),
        });
        let publisher = SnapshotPublisher {
            shared: Arc::clone(&shared),
            retired: None,
            reclaimed: 0,
            copied: 0,
        };
        let reader = SnapshotReader {
            shared,
            cached: initial,
        };
        (publisher, reader)
    }
}

/// The single writer side: publishes new epochs, recycling retired buffers.
#[derive(Debug)]
pub struct SnapshotPublisher {
    shared: Arc<VersionedStore>,
    /// The snapshot retired by the previous publication, kept so its buffers
    /// can be reclaimed once every reader has moved on.
    retired: Option<Arc<EpochSnapshot>>,
    reclaimed: u64,
    copied: u64,
}

impl SnapshotPublisher {
    /// Publishes `store` as the next epoch, stamped with `applied_seq`
    /// accepted raw updates, and returns the new epoch number.
    ///
    /// Steady state performs no store allocation: the double buffer retired
    /// two publications ago is refreshed in place via
    /// [`EmbeddingStore::copy_from`]. Only when a reader still holds that
    /// snapshot does this fall back to a fresh clone.
    pub fn publish(&mut self, store: &EmbeddingStore, applied_seq: u64) -> u64 {
        let epoch = self.shared.epoch.load(Ordering::Relaxed) + 1;
        let snapshot = match self.retired.take().map(Arc::try_unwrap) {
            Some(Ok(mut reusable)) => {
                reusable.store.copy_from(store);
                reusable.epoch = epoch;
                reusable.applied_seq = applied_seq;
                self.reclaimed += 1;
                Arc::new(reusable)
            }
            still_shared => {
                // A reader still holds the retired snapshot (or this is one
                // of the first two publications): release our reference and
                // pay for one full copy.
                drop(still_shared);
                self.copied += 1;
                Arc::new(EpochSnapshot {
                    epoch,
                    applied_seq,
                    store: store.clone(),
                })
            }
        };
        let previous = {
            let mut current = self.shared.current.lock().expect("snapshot lock poisoned");
            std::mem::replace(&mut *current, snapshot)
        };
        // Readers check this counter first; Release pairs with their Acquire
        // load so the swapped pointer is visible once the epoch is.
        self.shared.epoch.store(epoch, Ordering::Release);
        self.retired = Some(previous);
        epoch
    }

    /// The epoch of the most recent publication (0 before any).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// How many publications reclaimed the retired double buffer vs. paid
    /// for a fresh store copy — the double-buffering effectiveness metric.
    pub fn buffer_stats(&self) -> (u64, u64) {
        (self.reclaimed, self.copied)
    }

    /// A new reader handle starting at the current epoch.
    pub fn reader(&self) -> SnapshotReader {
        let cached = self
            .shared
            .current
            .lock()
            .expect("snapshot lock poisoned")
            .clone();
        SnapshotReader {
            shared: Arc::clone(&self.shared),
            cached,
        }
    }
}

/// A reader's cached handle onto the latest published snapshot.
///
/// Cheap to clone (two `Arc` clones); every reader thread owns its handle
/// and refreshes it lazily on access.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    shared: Arc<VersionedStore>,
    cached: Arc<EpochSnapshot>,
}

impl SnapshotReader {
    /// The freshest published snapshot.
    ///
    /// Hot path: one atomic load; the cached `Arc` is returned untouched
    /// while no newer epoch exists. When one does, the handle re-clones the
    /// current snapshot under the pointer-swap mutex — it never waits for
    /// the engine, which publishes only between batches.
    pub fn snapshot(&mut self) -> &Arc<EpochSnapshot> {
        if self.shared.epoch.load(Ordering::Acquire) != self.cached.epoch {
            self.cached = self
                .shared
                .current
                .lock()
                .expect("snapshot lock poisoned")
                .clone();
        }
        &self.cached
    }

    /// The snapshot this handle currently caches, without refreshing.
    pub fn cached(&self) -> &Arc<EpochSnapshot> {
        &self.cached
    }

    /// Refreshes and returns the current epoch.
    pub fn epoch(&mut self) -> u64 {
        self.snapshot().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_gnn::{Aggregator, GnnModel, LayerKind};
    use ripple_graph::VertexId;

    fn store(value: f32) -> EmbeddingStore {
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 8, 3], 0).unwrap();
        let mut s = EmbeddingStore::zeroed(&model, 6);
        s.set_embedding(2, VertexId(1), &[value, 0.0, 0.0]).unwrap();
        s
    }

    #[test]
    fn bootstrap_is_epoch_zero() {
        let (publisher, mut reader) = VersionedStore::bootstrap(&store(1.0));
        assert_eq!(publisher.epoch(), 0);
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.snapshot().applied_seq(), 0);
        assert_eq!(reader.snapshot().store().embedding(2, VertexId(1))[0], 1.0);
    }

    #[test]
    fn publish_advances_epoch_and_readers_refresh_lazily() {
        let (mut publisher, mut reader) = VersionedStore::bootstrap(&store(1.0));
        let mut stale = reader.clone();
        assert_eq!(publisher.publish(&store(2.0), 5), 1);
        assert_eq!(publisher.publish(&store(3.0), 9), 2);

        // A reader that refreshes sees the latest epoch…
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.applied_seq(), 9);
        assert_eq!(snap.store().embedding(2, VertexId(1))[0], 3.0);

        // …while a handle that never refreshes keeps serving its cache.
        assert_eq!(stale.cached().epoch(), 0);
        assert_eq!(stale.cached().store().embedding(2, VertexId(1))[0], 1.0);
        assert_eq!(stale.epoch(), 2);
    }

    #[test]
    fn steady_state_publication_reclaims_the_double_buffer() {
        let (mut publisher, mut reader) = VersionedStore::bootstrap(&store(0.0));
        for i in 0..10 {
            publisher.publish(&store(i as f32), i);
            // The only reader promptly moves to the new epoch, freeing the
            // retired snapshot for reuse.
            reader.snapshot();
        }
        let (reclaimed, copied) = publisher.buffer_stats();
        assert_eq!(reclaimed + copied, 10);
        assert!(
            reclaimed >= 7,
            "steady-state publishing should reuse retired buffers, got {reclaimed} reclaims / {copied} copies"
        );
    }

    #[test]
    fn slow_reader_forces_a_copy_but_keeps_its_snapshot_valid() {
        let (mut publisher, reader) = VersionedStore::bootstrap(&store(0.0));
        let hold = reader.clone(); // never refreshes, pins epoch 0
        for i in 0..5 {
            publisher.publish(&store(i as f32), i);
        }
        assert_eq!(hold.cached().epoch(), 0);
        assert_eq!(hold.cached().store().embedding(2, VertexId(1))[0], 0.0);
        let (_, copied) = publisher.buffer_stats();
        assert!(copied >= 1);
    }

    #[test]
    fn publisher_spawns_fresh_readers_at_the_current_epoch() {
        let (mut publisher, _reader) = VersionedStore::bootstrap(&store(0.0));
        publisher.publish(&store(4.0), 2);
        let mut fresh = publisher.reader();
        assert_eq!(fresh.epoch(), 1);
        assert_eq!(fresh.snapshot().store().embedding(2, VertexId(1))[0], 4.0);
    }
}
