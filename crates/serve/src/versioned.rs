//! Epoch-versioned embedding-store snapshots behind an `Arc` swap.
//!
//! The serving layer separates one **publisher** (the scheduler thread, which
//! owns the engine) from many **readers** (query threads). After every
//! committed batch the publisher refreshes a snapshot of the engine's store
//! and publishes it under the next epoch number; readers resolve queries
//! against whichever published snapshot their handle currently caches and
//! never observe a half-propagated store.
//!
//! # Read path
//!
//! [`SnapshotReader::snapshot`] is **lock-free in steady state**: it performs
//! one atomic epoch load and, only when a newer epoch was published since the
//! last call, re-clones the current `Arc` under a mutex whose critical
//! section is a pointer swap (the publisher never holds it while the engine
//! propagates). Readers therefore never block on the engine, and a reader
//! that does nothing keeps serving its cached epoch indefinitely.
//!
//! # Publish path (double buffering + dirty rows)
//!
//! Publishing epoch `n+1` retires the epoch-`n` snapshot. The publisher keeps
//! the retired `Arc`; by the time epoch `n+2` is published, steady-state
//! readers have moved off epoch `n`, so [`Arc::try_unwrap`] reclaims its
//! buffers. When the caller supplies the batch's **dirty rows** (the engines
//! track them per batch), the reclaimed buffer — exactly two epochs stale —
//! is refreshed by copying only the rows of the last two dirty sets via
//! [`ripple_gnn::EmbeddingStore::copy_rows_from`]: O(affected) instead of the
//! O(|V|·D) full-table [`ripple_gnn::EmbeddingStore::copy_from`] memcpy.
//! A slow reader still holding the old epoch, or a publication without a
//! dirty set, falls back to the full refresh/copy for that publication.
//! [`SnapshotPublisher::buffer_stats`] reports rows copied per epoch.

use ripple_gnn::EmbeddingStore;
use ripple_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published, immutable snapshot of the embedding store.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    applied_seq: u64,
    applied_secondary: u64,
    topology_epoch: u64,
    store: EmbeddingStore,
}

impl EpochSnapshot {
    /// The epoch this snapshot was published at (0 = the bootstrap store).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of accepted raw updates reflected in this snapshot, counting
    /// updates that coalescing merged or cancelled before the engine saw
    /// them.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Of [`EpochSnapshot::applied_seq`], how many were **secondary** route
    /// copies: the second delivery of a cross-shard edge update that fanned
    /// out to both endpoint owners. Always 0 for single-engine sessions.
    /// Merged whole-graph reads subtract the secondary backlog so one
    /// logical update pending at two owners counts once in their staleness
    /// stamp.
    pub fn applied_secondary(&self) -> u64 {
        self.applied_secondary
    }

    /// The engine's topology epoch (update batches absorbed by its CSR
    /// topology snapshot) as of this publication — published next to the
    /// embedding epoch so queries can expose topology staleness.
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    /// The embeddings as of this epoch.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }
}

/// Double-buffering and dirty-row effectiveness counters of a
/// [`SnapshotPublisher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Publications that reclaimed the retired double buffer.
    pub reclaimed: u64,
    /// Publications that fell back to a fresh full-store clone (a reader
    /// still held the retired snapshot, or one of the first publications).
    pub copied: u64,
    /// Store rows copied by dirty-row refreshes across all reclaimed
    /// publications (full refreshes count every row).
    pub rows_copied: u64,
    /// Reclaimed publications that refreshed via dirty rows instead of the
    /// full-table copy.
    pub dirty_refreshes: u64,
}

/// Shared state between the publisher and every reader handle.
#[derive(Debug)]
pub struct VersionedStore {
    /// Mirror of `current`'s epoch, so readers detect staleness of their
    /// cached handle with a single atomic load.
    epoch: AtomicU64,
    /// The latest published snapshot. The mutex guards only the `Arc` clone
    /// / swap (a pointer operation), never the store contents.
    current: Mutex<Arc<EpochSnapshot>>,
}

impl VersionedStore {
    /// Publishes `bootstrap` as epoch 0 and returns the (unique) publisher
    /// plus a first reader handle; further readers are cloned from either.
    pub fn bootstrap(bootstrap: &EmbeddingStore) -> (SnapshotPublisher, SnapshotReader) {
        VersionedStore::bootstrap_at(bootstrap, 0, 0, 0, 0)
    }

    /// Publishes `bootstrap` with explicit counter stamps — the recovery
    /// continuation of [`VersionedStore::bootstrap`]: a session restored
    /// from a checkpoint plus WAL replay resumes its epoch sequence where
    /// the crashed process left off instead of restarting at 0, preserving
    /// epoch monotonicity for readers that outlive the crash.
    pub fn bootstrap_at(
        bootstrap: &EmbeddingStore,
        epoch: u64,
        applied_seq: u64,
        applied_secondary: u64,
        topology_epoch: u64,
    ) -> (SnapshotPublisher, SnapshotReader) {
        let initial = Arc::new(EpochSnapshot {
            epoch,
            applied_seq,
            applied_secondary,
            topology_epoch,
            store: bootstrap.clone(),
        });
        let shared = Arc::new(VersionedStore {
            epoch: AtomicU64::new(epoch),
            current: Mutex::new(Arc::clone(&initial)),
        });
        let publisher = SnapshotPublisher {
            shared: Arc::clone(&shared),
            retired: None,
            prev_dirty: None,
            stats: BufferStats::default(),
        };
        let reader = SnapshotReader {
            shared,
            cached: initial,
        };
        (publisher, reader)
    }
}

/// The single writer side: publishes new epochs, recycling retired buffers.
#[derive(Debug)]
pub struct SnapshotPublisher {
    shared: Arc<VersionedStore>,
    /// The snapshot retired by the previous publication, kept so its buffers
    /// can be reclaimed once every reader has moved on.
    retired: Option<Arc<EpochSnapshot>>,
    /// The dirty rows of the previous publication (`None` when that
    /// publication had no dirty set). The retired buffer is two epochs
    /// stale, so refreshing it needs the union of the last two dirty sets.
    prev_dirty: Option<Vec<VertexId>>,
    stats: BufferStats,
}

impl SnapshotPublisher {
    /// Publishes `store` as the next epoch, stamped with `applied_seq`
    /// accepted raw updates and the engine's `topology_epoch`, and returns
    /// the new epoch number. Equivalent to [`SnapshotPublisher::publish_rows`]
    /// without a dirty set (the refresh copies the full store).
    pub fn publish(
        &mut self,
        store: &EmbeddingStore,
        applied_seq: u64,
        topology_epoch: u64,
    ) -> u64 {
        self.publish_rows(store, applied_seq, topology_epoch, None)
    }

    /// Publishes `store` as the next epoch. `dirty` names the store rows
    /// changed since the previous publication (sorted or not — only
    /// membership matters); `None` means unknown.
    ///
    /// Steady state performs no store allocation: the double buffer retired
    /// two publications ago is reclaimed and — when this and the previous
    /// publication both carried dirty sets — refreshed by copying only the
    /// union of those rows ([`EmbeddingStore::copy_rows_from`]), making
    /// epoch publication O(affected) instead of O(|V|·D). Without dirty
    /// sets the reclaimed buffer is refreshed with the full-table
    /// [`EmbeddingStore::copy_from`]; only when a reader still holds the
    /// retired snapshot does this fall back to a fresh clone.
    pub fn publish_rows(
        &mut self,
        store: &EmbeddingStore,
        applied_seq: u64,
        topology_epoch: u64,
        dirty: Option<&[VertexId]>,
    ) -> u64 {
        self.publish_stamped(store, applied_seq, 0, topology_epoch, dirty)
    }

    /// [`SnapshotPublisher::publish_rows`] with an explicit
    /// [`EpochSnapshot::applied_secondary`] count — used by shard workers,
    /// which receive the second copy of cross-shard edge updates and must
    /// report how many of their applied updates were such duplicates.
    pub fn publish_stamped(
        &mut self,
        store: &EmbeddingStore,
        applied_seq: u64,
        applied_secondary: u64,
        topology_epoch: u64,
        dirty: Option<&[VertexId]>,
    ) -> u64 {
        let epoch = self.shared.epoch.load(Ordering::Relaxed) + 1;
        let snapshot = match self.retired.take().map(Arc::try_unwrap) {
            Some(Ok(mut reusable)) => {
                // The reclaimed buffer missed the previous publication's
                // changes and this one's; both dirty sets must be known to
                // take the O(affected) path — and the path only pays off
                // while the union is sparse. Past half the table, per-row
                // copies (random order, overlaps copied twice) lose to the
                // contiguous full-table memcpy, so dense epochs fall back.
                // `copy_rows_from` refuses (and touches nothing) on a shape
                // mismatch, in which case the full refresh below takes over.
                let refreshed = match (dirty, &self.prev_dirty) {
                    (Some(d), Some(p)) if p.len() + d.len() <= store.num_vertices() / 2 => {
                        let ok = reusable.store.copy_rows_from(store, p)
                            && reusable.store.copy_rows_from(store, d);
                        if ok {
                            self.stats.rows_copied += (p.len() + d.len()) as u64;
                        }
                        ok
                    }
                    _ => false,
                };
                if refreshed {
                    self.stats.dirty_refreshes += 1;
                } else {
                    reusable.store.copy_from(store);
                    self.stats.rows_copied += store.num_vertices() as u64;
                }
                reusable.epoch = epoch;
                reusable.applied_seq = applied_seq;
                reusable.applied_secondary = applied_secondary;
                reusable.topology_epoch = topology_epoch;
                self.stats.reclaimed += 1;
                Arc::new(reusable)
            }
            still_shared => {
                // A reader still holds the retired snapshot (or this is one
                // of the first two publications): release our reference and
                // pay for one full copy.
                drop(still_shared);
                self.stats.copied += 1;
                self.stats.rows_copied += store.num_vertices() as u64;
                Arc::new(EpochSnapshot {
                    epoch,
                    applied_seq,
                    applied_secondary,
                    topology_epoch,
                    store: store.clone(),
                })
            }
        };
        // Remember this publication's dirty set for the next reclaim,
        // reusing the buffer capacity.
        match (dirty, &mut self.prev_dirty) {
            (Some(d), Some(buf)) => {
                buf.clear();
                buf.extend_from_slice(d);
            }
            (Some(d), slot @ None) => *slot = Some(d.to_vec()),
            (None, slot) => *slot = None,
        }
        let previous = {
            let mut current = self.shared.current.lock().expect("snapshot lock poisoned");
            std::mem::replace(&mut *current, snapshot)
        };
        // Readers check this counter first; Release pairs with their Acquire
        // load so the swapped pointer is visible once the epoch is.
        self.shared.epoch.store(epoch, Ordering::Release);
        self.retired = Some(previous);
        epoch
    }

    /// The epoch of the most recent publication (0 before any).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Double-buffering and dirty-row effectiveness counters: reclaims vs.
    /// full clones, and rows copied per epoch.
    pub fn buffer_stats(&self) -> BufferStats {
        self.stats
    }

    /// A new reader handle starting at the current epoch.
    pub fn reader(&self) -> SnapshotReader {
        let cached = self
            .shared
            .current
            .lock()
            .expect("snapshot lock poisoned")
            .clone();
        SnapshotReader {
            shared: Arc::clone(&self.shared),
            cached,
        }
    }
}

/// A reader's cached handle onto the latest published snapshot.
///
/// Cheap to clone (two `Arc` clones); every reader thread owns its handle
/// and refreshes it lazily on access.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    shared: Arc<VersionedStore>,
    cached: Arc<EpochSnapshot>,
}

impl SnapshotReader {
    /// The freshest published snapshot.
    ///
    /// Hot path: one atomic load; the cached `Arc` is returned untouched
    /// while no newer epoch exists. When one does, the handle re-clones the
    /// current snapshot under the pointer-swap mutex — it never waits for
    /// the engine, which publishes only between batches.
    pub fn snapshot(&mut self) -> &Arc<EpochSnapshot> {
        if self.shared.epoch.load(Ordering::Acquire) != self.cached.epoch {
            self.cached = self
                .shared
                .current
                .lock()
                .expect("snapshot lock poisoned")
                .clone();
        }
        &self.cached
    }

    /// The snapshot this handle currently caches, without refreshing.
    pub fn cached(&self) -> &Arc<EpochSnapshot> {
        &self.cached
    }

    /// Refreshes and returns the current epoch.
    pub fn epoch(&mut self) -> u64 {
        self.snapshot().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_gnn::{Aggregator, GnnModel, LayerKind};
    use ripple_graph::VertexId;

    fn store(value: f32) -> EmbeddingStore {
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 8, 3], 0).unwrap();
        let mut s = EmbeddingStore::zeroed(&model, 6);
        s.set_embedding(2, VertexId(1), &[value, 0.0, 0.0]).unwrap();
        s
    }

    #[test]
    fn bootstrap_is_epoch_zero() {
        let (publisher, mut reader) = VersionedStore::bootstrap(&store(1.0));
        assert_eq!(publisher.epoch(), 0);
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.snapshot().applied_seq(), 0);
        assert_eq!(reader.snapshot().topology_epoch(), 0);
        assert_eq!(reader.snapshot().store().embedding(2, VertexId(1))[0], 1.0);
    }

    #[test]
    fn publish_advances_epoch_and_readers_refresh_lazily() {
        let (mut publisher, mut reader) = VersionedStore::bootstrap(&store(1.0));
        let mut stale = reader.clone();
        assert_eq!(publisher.publish(&store(2.0), 5, 1), 1);
        assert_eq!(publisher.publish(&store(3.0), 9, 2), 2);

        // A reader that refreshes sees the latest epoch…
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.applied_seq(), 9);
        assert_eq!(snap.topology_epoch(), 2);
        assert_eq!(snap.store().embedding(2, VertexId(1))[0], 3.0);

        // …while a handle that never refreshes keeps serving its cache.
        assert_eq!(stale.cached().epoch(), 0);
        assert_eq!(stale.cached().store().embedding(2, VertexId(1))[0], 1.0);
        assert_eq!(stale.epoch(), 2);
    }

    #[test]
    fn steady_state_publication_reclaims_the_double_buffer() {
        let (mut publisher, mut reader) = VersionedStore::bootstrap(&store(0.0));
        for i in 0..10 {
            publisher.publish(&store(i as f32), i, i);
            // The only reader promptly moves to the new epoch, freeing the
            // retired snapshot for reuse.
            reader.snapshot();
        }
        let BufferStats {
            reclaimed, copied, ..
        } = publisher.buffer_stats();
        assert_eq!(reclaimed + copied, 10);
        assert!(
            reclaimed >= 7,
            "steady-state publishing should reuse retired buffers, got {reclaimed} reclaims / {copied} copies"
        );
    }

    #[test]
    fn dirty_row_publication_copies_only_affected_rows() {
        let (mut publisher, mut reader) = VersionedStore::bootstrap(&store(0.0));
        let mut source = store(0.0);
        let mut expected_rows = 0u64;
        for i in 1..=10u64 {
            // One row changes per "batch".
            let v = VertexId((i % 4) as u32);
            source.set_embedding(2, v, &[i as f32, 0.0, 0.0]).unwrap();
            let stats_before = publisher.buffer_stats();
            publisher.publish_rows(&source, i, i, Some(&[v]));
            reader.snapshot();
            let stats = publisher.buffer_stats();
            if stats.dirty_refreshes > stats_before.dirty_refreshes {
                // A dirty refresh copies the union of the last two dirty
                // sets: two single-row sets here.
                expected_rows += 2;
            } else {
                expected_rows += source.num_vertices() as u64;
            }
            assert_eq!(stats.rows_copied, expected_rows);
            // The published snapshot is complete regardless of refresh path.
            assert!(reader.snapshot().store() == &source, "epoch {i} diverged");
        }
        let stats = publisher.buffer_stats();
        assert!(
            stats.dirty_refreshes >= 7,
            "steady state should refresh via dirty rows, got {stats:?}"
        );
        // Dirty publication is O(affected): far fewer rows copied than 10
        // full 6-vertex refreshes.
        assert!(stats.rows_copied < 10 * 6);
    }

    #[test]
    fn missing_dirty_set_falls_back_to_full_refresh() {
        let (mut publisher, mut reader) = VersionedStore::bootstrap(&store(0.0));
        for i in 1..=4u64 {
            // Alternate between known and unknown dirty sets; correctness
            // must not depend on the path taken.
            let dirty: Option<&[VertexId]> = if i % 2 == 0 { Some(&[]) } else { None };
            publisher.publish_rows(&store(i as f32), i, i, dirty);
            assert_eq!(
                reader.snapshot().store().embedding(2, VertexId(1))[0],
                i as f32
            );
        }
        // A publication after a `None` never dirty-refreshes (the reclaimed
        // buffer's staleness is unknown), so every reclaim was a full copy.
        assert_eq!(publisher.buffer_stats().dirty_refreshes, 0);
    }

    #[test]
    fn slow_reader_forces_a_copy_but_keeps_its_snapshot_valid() {
        let (mut publisher, reader) = VersionedStore::bootstrap(&store(0.0));
        let hold = reader.clone(); // never refreshes, pins epoch 0
        for i in 0..5 {
            publisher.publish(&store(i as f32), i, i);
        }
        assert_eq!(hold.cached().epoch(), 0);
        assert_eq!(hold.cached().store().embedding(2, VertexId(1))[0], 0.0);
        assert!(publisher.buffer_stats().copied >= 1);
    }

    #[test]
    fn publisher_spawns_fresh_readers_at_the_current_epoch() {
        let (mut publisher, _reader) = VersionedStore::bootstrap(&store(0.0));
        publisher.publish(&store(4.0), 2, 1);
        let mut fresh = publisher.reader();
        assert_eq!(fresh.epoch(), 1);
        assert_eq!(fresh.snapshot().topology_epoch(), 1);
        assert_eq!(fresh.snapshot().store().embedding(2, VertexId(1))[0], 4.0);
    }
}
