//! Shared serving counters, updated lock-free from every thread.
//!
//! One [`ServeMetrics`] instance is shared (via `Arc`) between the update
//! clients, the scheduler thread and every [`crate::QueryService`] handle.
//! All fields are relaxed atomics — the counters are monotonic and only read
//! for reporting, so no ordering beyond atomicity is needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters describing a serving session.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    enqueued: AtomicU64,
    shed: AtomicU64,
    coalesced: AtomicU64,
    applied: AtomicU64,
    batches: AtomicU64,
    epochs: AtomicU64,
    engine_errors: AtomicU64,
    admitted_concurrent: AtomicU64,
    conflicts: AtomicU64,
    merged: AtomicU64,
    serialized: AtomicU64,
    lag_nanos_sum: AtomicU64,
    lag_nanos_max: AtomicU64,
    lag_count: AtomicU64,
    reads: AtomicU64,
    read_nanos_sum: AtomicU64,
}

impl ServeMetrics {
    /// A fresh, all-zero metrics block.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    pub(crate) fn record_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_coalesced(&self, n: u64) {
        self.coalesced.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_flush(&self, raw_applied: u64, ran_engine: bool) {
        self.applied.fetch_add(raw_applied, Ordering::Relaxed);
        if ran_engine {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.epochs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_engine_error(&self) {
        self.engine_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one committed admission group of `windows` windows. Groups
    /// of two or more executed concurrently (one merged engine pass); every
    /// window beyond a group's first rode along as a merge.
    pub(crate) fn record_admission_group(&self, windows: u64) {
        if windows >= 2 {
            self.admitted_concurrent
                .fetch_add(windows, Ordering::Relaxed);
            self.merged.fetch_add(windows - 1, Ordering::Relaxed);
        }
    }

    /// Records one footprint conflict: a closing window intersected the
    /// in-flight reservation set and forced the staged group to commit
    /// ahead of it (the window was serialized behind the group).
    pub(crate) fn record_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
        self.serialized.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one update's enqueue→published-epoch visibility lag.
    pub(crate) fn record_visibility_lag(&self, lag: Duration) {
        let nanos = lag.as_nanos().min(u64::MAX as u128) as u64;
        self.lag_nanos_sum.fetch_add(nanos, Ordering::Relaxed);
        self.lag_nanos_max.fetch_max(nanos, Ordering::Relaxed);
        self.lag_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served read and its latency.
    pub(crate) fn record_read(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_nanos_sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Raw updates accepted into the queue so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Updates rejected by the [`crate::BackpressurePolicy::Shed`] policy.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Updates removed by window coalescing (merged feature rewrites and
    /// cancelled add/delete churn) before the engine saw them.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Raw updates covered by published epochs (counts coalesced-away ones).
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Non-empty batches handed to the engine.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Epochs published.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Engine failures observed by the scheduler (the engine is poisoned
    /// after the first).
    pub fn engine_errors(&self) -> u64 {
        self.engine_errors.load(Ordering::Relaxed)
    }

    /// Windows committed inside concurrent admission groups (size >= 2).
    pub fn admitted_concurrent(&self) -> u64 {
        self.admitted_concurrent.load(Ordering::Relaxed)
    }

    /// Footprint conflicts detected by the admission controller.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Windows that joined an already non-empty staged group (executed in
    /// the group's single merged engine pass).
    pub fn merged(&self) -> u64 {
        self.merged.load(Ordering::Relaxed)
    }

    /// Windows deferred behind a conflicting in-flight group (the group
    /// committed first; the window staged alone afterwards).
    pub fn serialized(&self) -> u64 {
        self.serialized.load(Ordering::Relaxed)
    }

    /// Reads served by all query handles.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn report(&self) -> MetricsReport {
        let lag_count = self.lag_count.load(Ordering::Relaxed);
        let reads = self.reads.load(Ordering::Relaxed);
        MetricsReport {
            enqueued: self.enqueued(),
            shed: self.shed(),
            coalesced: self.coalesced(),
            applied: self.applied(),
            batches: self.batches(),
            epochs: self.epochs(),
            engine_errors: self.engine_errors(),
            admitted_concurrent: self.admitted_concurrent(),
            conflicts: self.conflicts(),
            merged: self.merged(),
            serialized: self.serialized(),
            reads,
            mean_read_latency: mean_duration(self.read_nanos_sum.load(Ordering::Relaxed), reads),
            mean_visibility_lag: mean_duration(
                self.lag_nanos_sum.load(Ordering::Relaxed),
                lag_count,
            ),
            max_visibility_lag: Duration::from_nanos(self.lag_nanos_max.load(Ordering::Relaxed)),
        }
    }
}

fn mean_duration(nanos_sum: u64, count: u64) -> Duration {
    nanos_sum
        .checked_div(count)
        .map_or(Duration::ZERO, Duration::from_nanos)
}

/// Plain-data snapshot of [`ServeMetrics`], for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Raw updates accepted into the queue.
    pub enqueued: u64,
    /// Updates rejected under the shed policy.
    pub shed: u64,
    /// Updates removed by window coalescing.
    pub coalesced: u64,
    /// Raw updates covered by published epochs.
    pub applied: u64,
    /// Non-empty batches handed to the engine.
    pub batches: u64,
    /// Epochs published.
    pub epochs: u64,
    /// Engine failures observed by the scheduler.
    pub engine_errors: u64,
    /// Windows committed inside concurrent admission groups (size >= 2).
    pub admitted_concurrent: u64,
    /// Footprint conflicts detected by the admission controller.
    pub conflicts: u64,
    /// Windows merged into an already non-empty staged group.
    pub merged: u64,
    /// Windows serialized behind a conflicting in-flight group.
    pub serialized: u64,
    /// Reads served.
    pub reads: u64,
    /// Mean read latency across all served reads.
    pub mean_read_latency: Duration,
    /// Mean enqueue→published-epoch lag across applied updates.
    pub mean_visibility_lag: Duration,
    /// Worst enqueue→published-epoch lag.
    pub max_visibility_lag: Duration,
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "enqueued={} shed={} coalesced={} applied={} batches={} epochs={} errors={} \
             admitted_concurrent={} conflicts={} merged={} serialized={} \
             reads={} mean_read={:.3}ms mean_lag={:.3}ms max_lag={:.3}ms",
            self.enqueued,
            self.shed,
            self.coalesced,
            self.applied,
            self.batches,
            self.epochs,
            self.engine_errors,
            self.admitted_concurrent,
            self.conflicts,
            self.merged,
            self.serialized,
            self.reads,
            self.mean_read_latency.as_secs_f64() * 1e3,
            self.mean_visibility_lag.as_secs_f64() * 1e3,
            self.max_visibility_lag.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report() {
        let m = ServeMetrics::new();
        m.record_enqueued();
        m.record_enqueued();
        m.record_shed();
        m.record_coalesced(2);
        m.record_flush(2, true);
        m.record_flush(1, false);
        m.record_engine_error();
        m.record_admission_group(3);
        m.record_admission_group(1);
        m.record_conflict();
        m.record_visibility_lag(Duration::from_millis(2));
        m.record_visibility_lag(Duration::from_millis(4));
        m.record_read(Duration::from_micros(10));

        let r = m.report();
        assert_eq!(r.enqueued, 2);
        assert_eq!(r.shed, 1);
        assert_eq!(r.coalesced, 2);
        assert_eq!(r.applied, 3);
        assert_eq!(r.batches, 1);
        assert_eq!(r.epochs, 2);
        assert_eq!(r.engine_errors, 1);
        assert_eq!(
            r.admitted_concurrent, 3,
            "singleton groups are not concurrent"
        );
        assert_eq!(r.merged, 2);
        assert_eq!(r.conflicts, 1);
        assert_eq!(r.serialized, 1);
        assert_eq!(r.reads, 1);
        assert_eq!(r.mean_visibility_lag, Duration::from_millis(3));
        assert_eq!(r.max_visibility_lag, Duration::from_millis(4));
        assert!(r.mean_read_latency >= Duration::from_micros(10));
        let line = r.to_string();
        assert!(line.contains("epochs=2"));
        assert!(line.contains("mean_lag"));
    }

    #[test]
    fn empty_report_has_zero_means() {
        let r = ServeMetrics::new().report();
        assert_eq!(r.mean_read_latency, Duration::ZERO);
        assert_eq!(r.mean_visibility_lag, Duration::ZERO);
    }
}
