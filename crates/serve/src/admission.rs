//! Footprint-based concurrent window admission: the conflict-tracking
//! commit pipeline in front of the serving engines.
//!
//! The serial scheduler closes a coalesced window, logs it, applies it, and
//! publishes its epoch — one window fully committed before the next one is
//! even looked at. Admission decouples *reservation* from *execution*:
//! when a window closes, its [`Footprint`] (the vertices its updates plus
//! their k-hop affected cones can touch) is computed against the current
//! topology and checked against every in-flight reservation. Windows whose
//! footprints are pairwise disjoint are **staged together**: each is
//! WAL-logged immediately (in `window_seq` order, with its post-commit
//! counters predicted), then the whole group executes as one merged engine
//! pass and commits window by window, in the exact order the WAL recorded.
//!
//! The state machine per window:
//!
//! ```text
//!           footprint computed      WAL appended,           applied +
//!           against live topology   reservation held        epoch published
//!  (closed) ---------------------> Pending -----------> Reserved -----------> Committed
//!                                     |                    ^
//!                                     | conflict with      | staged group drains
//!                                     | in-flight set      | first, then this
//!                                     +--------------------+ window stages alone
//! ```
//!
//! A window that intersects the in-flight set is **serialized**: the staged
//! group commits ahead of it (the conflict is counted), and only then does
//! the conflicting window reserve — so the commit order readers observe is
//! always the WAL's `window_seq` order, and every observable embedding is
//! bit-identical to the serial pipeline at any concurrency level. Disjoint
//! windows that join a non-empty group are counted as **merged**; every
//! window committed from a group of two or more counts toward
//! **admitted_concurrent**.
//!
//! The invariant the controller maintains is simple and load-bearing: the
//! staged set is pairwise footprint-disjoint at all times. Everything else
//! (merged-pass bit-identity, per-window epoch reconstruction from the
//! merged dirty set, group fsync) leans on it.

use ripple_core::Footprint;
use std::time::{Duration, Instant};

/// Admission knobs carried inside [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionParams {
    /// Whether concurrent admission is on. Off (the default) keeps the
    /// serial one-window-at-a-time pipeline exactly as it was.
    pub enabled: bool,
    /// Maximum in-flight (reserved, uncommitted) windows. The staged group
    /// drains as soon as it reaches this depth. Must be at least 1.
    pub max_inflight: usize,
}

impl Default for AdmissionParams {
    fn default() -> Self {
        AdmissionParams {
            enabled: false,
            max_inflight: 4,
        }
    }
}

impl AdmissionParams {
    /// Admission enabled with the given in-flight depth.
    pub fn enabled(max_inflight: usize) -> Self {
        AdmissionParams {
            enabled: true,
            max_inflight: max_inflight.max(1),
        }
    }

    /// Builds the knobs from the `RIPPLE_SERVE_ADMISSION` (`1`/`on`/`true`
    /// to enable) and `RIPPLE_SERVE_INFLIGHT` (in-flight depth) environment
    /// variables, defaulting to disabled.
    pub fn from_env() -> Self {
        let mut params = AdmissionParams::default();
        if let Ok(v) = std::env::var("RIPPLE_SERVE_ADMISSION") {
            params.enabled = matches!(v.as_str(), "1" | "on" | "true" | "yes");
        }
        if let Some(depth) = std::env::var("RIPPLE_SERVE_INFLIGHT")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            params.max_inflight = depth.max(1);
        }
        params
    }
}

/// Lifecycle of one window moving through the admission pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowState {
    /// Closed and footprinted, but not yet reserved (not WAL-logged).
    Pending,
    /// WAL-logged and holding a reservation in the in-flight set.
    Reserved,
    /// Applied and published; the reservation is released.
    Committed,
}

/// One window travelling through admission: its sequence number, its
/// footprint reservation, and whatever bookkeeping the caller needs to
/// commit it later (`P` differs between the single-engine scheduler and the
/// shard workers).
#[derive(Debug)]
pub struct StagedWindow<P> {
    seq: u64,
    footprint: Footprint,
    state: WindowState,
    /// Caller-owned commit bookkeeping (batch, predicted counters, lag
    /// instants, …).
    pub payload: P,
}

impl<P> StagedWindow<P> {
    /// A freshly closed window in the [`WindowState::Pending`] state.
    pub fn pending(seq: u64, footprint: Footprint, payload: P) -> Self {
        StagedWindow {
            seq,
            footprint,
            state: WindowState::Pending,
            payload,
        }
    }

    /// The window's logged sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The window's read/write footprint.
    pub fn footprint(&self) -> &Footprint {
        &self.footprint
    }

    /// Where the window is in the Pending → Reserved → Committed lifecycle.
    pub fn state(&self) -> WindowState {
        self.state
    }

    /// Marks the window committed (its epoch published). Must currently be
    /// Reserved — the pipeline never commits a window it has not logged.
    pub fn commit(&mut self) {
        debug_assert_eq!(self.state, WindowState::Reserved, "commit before reserve");
        self.state = WindowState::Committed;
    }
}

/// The in-flight reservation set: at most `max_inflight` staged windows
/// whose footprints are pairwise disjoint, waiting to execute as one merged
/// group. Commit order is staging order, which is `window_seq` order.
#[derive(Debug)]
pub struct AdmissionController<P> {
    max_inflight: usize,
    staged: Vec<StagedWindow<P>>,
    /// Instant the oldest currently staged window was reserved, bounding
    /// how long an admitted window may wait for co-travellers.
    staged_since: Option<Instant>,
}

impl<P> AdmissionController<P> {
    /// An empty controller admitting up to `max_inflight` windows.
    pub fn new(max_inflight: usize) -> Self {
        AdmissionController {
            max_inflight: max_inflight.max(1),
            staged: Vec::new(),
            staged_since: None,
        }
    }

    /// Number of in-flight (reserved) windows.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether no window is currently reserved.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Whether the staged group has reached the in-flight cap (the caller
    /// must drain before staging more).
    pub fn is_full(&self) -> bool {
        self.staged.len() >= self.max_inflight
    }

    /// Whether `footprint` is disjoint from every in-flight reservation —
    /// i.e. whether a window with this footprint may join the staged group
    /// without being observable. An empty group admits anything.
    pub fn admits(&self, footprint: &Footprint) -> bool {
        self.staged.iter().all(|w| w.footprint.disjoint(footprint))
    }

    /// Reserves `window`: transitions it Pending → Reserved and adds it to
    /// the in-flight set. The caller must have WAL-logged the window and
    /// checked [`AdmissionController::admits`] (debug-asserted here — a
    /// conflicting reservation would break bit-identity, not just perf).
    pub fn reserve(&mut self, mut window: StagedWindow<P>) {
        debug_assert_eq!(window.state, WindowState::Pending, "double reserve");
        debug_assert!(
            self.admits(&window.footprint),
            "reserving a conflicting window"
        );
        debug_assert!(!self.is_full(), "reserving past the in-flight cap");
        debug_assert!(
            self.staged
                .last()
                .map(|w| w.seq < window.seq)
                .unwrap_or(true),
            "reservations must stage in window_seq order"
        );
        window.state = WindowState::Reserved;
        self.staged_since.get_or_insert_with(Instant::now);
        self.staged.push(window);
    }

    /// The most recently reserved window, if any — the one whose predicted
    /// post-commit counters the next reservation chains from.
    pub fn last(&self) -> Option<&StagedWindow<P>> {
        self.staged.last()
    }

    /// Takes the whole staged group for execution, in staging (=
    /// `window_seq`) order, emptying the in-flight set.
    pub fn take_group(&mut self) -> Vec<StagedWindow<P>> {
        self.staged_since = None;
        std::mem::take(&mut self.staged)
    }

    /// The instant by which the staged group must drain so no admitted
    /// window waits longer than `max_delay` for co-travellers.
    pub fn deadline(&self, max_delay: Duration) -> Option<Instant> {
        self.staged_since.map(|t| t + max_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_graph::VertexId;

    fn fp(vertices: &[u32]) -> Footprint {
        Footprint::from_writes(vertices.iter().map(|&v| VertexId(v)).collect())
    }

    #[test]
    fn disjoint_windows_stage_until_the_cap() {
        let mut ctl: AdmissionController<()> = AdmissionController::new(2);
        assert!(ctl.admits(&fp(&[1, 2])));
        ctl.reserve(StagedWindow::pending(1, fp(&[1, 2]), ()));
        assert!(ctl.admits(&fp(&[3])));
        assert!(!ctl.admits(&fp(&[2, 3])), "overlap on vertex 2");
        ctl.reserve(StagedWindow::pending(2, fp(&[3]), ()));
        assert!(ctl.is_full(), "cap of 2 reached");
        let group = ctl.take_group();
        assert_eq!(group.len(), 2);
        assert!(ctl.is_empty());
        assert_eq!(
            group.iter().map(StagedWindow::seq).collect::<Vec<_>>(),
            vec![1, 2],
            "groups drain in window_seq order"
        );
        assert!(group.iter().all(|w| w.state() == WindowState::Reserved));
    }

    #[test]
    fn window_state_machine_advances_in_order() {
        let mut ctl: AdmissionController<u8> = AdmissionController::new(4);
        let w = StagedWindow::pending(7, fp(&[5]), 42u8);
        assert_eq!(w.state(), WindowState::Pending);
        ctl.reserve(w);
        let mut group = ctl.take_group();
        assert_eq!(group[0].state(), WindowState::Reserved);
        group[0].commit();
        assert_eq!(group[0].state(), WindowState::Committed);
        assert_eq!(group[0].payload, 42);
    }

    #[test]
    fn empty_footprints_always_coexist() {
        let mut ctl: AdmissionController<()> = AdmissionController::new(4);
        ctl.reserve(StagedWindow::pending(1, Footprint::empty(), ()));
        assert!(ctl.admits(&Footprint::empty()));
        assert!(ctl.admits(&fp(&[0, 1, 2])));
    }

    #[test]
    fn deadline_tracks_the_oldest_reservation() {
        let mut ctl: AdmissionController<()> = AdmissionController::new(4);
        assert!(ctl.deadline(Duration::from_millis(5)).is_none());
        ctl.reserve(StagedWindow::pending(1, fp(&[1]), ()));
        let d1 = ctl.deadline(Duration::from_millis(5)).unwrap();
        ctl.reserve(StagedWindow::pending(2, fp(&[2]), ()));
        let d2 = ctl.deadline(Duration::from_millis(5)).unwrap();
        assert_eq!(d1, d2, "later reservations do not extend the deadline");
        ctl.take_group();
        assert!(ctl.deadline(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn params_default_off_and_clamp_inflight() {
        let params = AdmissionParams::default();
        assert!(!params.enabled);
        assert_eq!(AdmissionParams::enabled(0).max_inflight, 1);
        assert!(AdmissionParams::enabled(4).enabled);
    }
}
