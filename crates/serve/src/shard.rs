//! The sharded serving tier: hash-partitioned [`ShardEngine`]s, each behind
//! its own scheduler thread and snapshot publisher.
//!
//! [`spawn_sharded`] partitions the bootstrap graph with the workspace's
//! [`HashPartitioner`], builds one halo-restricted [`ShardEngine`] per
//! partition, and runs each on a dedicated worker thread
//! (`ripple-serve-shard-{p}`). Every worker owns the full single-engine
//! serving pipeline for its shard: an update-coalescing window, an
//! epoch-versioned [`SnapshotPublisher`], and — new to this tier — a halo
//! mailbox of delta messages received from peer shards. A flush closes the
//! window, applies the coalesced batch *and* the pending halos through the
//! shard engine, publishes the shard's next epoch, and ships the outgoing
//! cross-shard deltas the window produced to their owners' mailboxes.
//!
//! Epochs therefore form a per-shard **vector clock**, surfaced to readers
//! through [`crate::QueryService`] stamps. At quiescence
//! ([`ShardedServeHandle::quiesce`]) the gathered shard stores match the
//! unsharded engine within float tolerance — the same linearity argument
//! that makes the BSP distributed engine exact, run asynchronously.
//!
//! Shard workers drain **unbounded** channels so halo sends between peers
//! can never deadlock; producer backpressure is enforced at the
//! [`crate::ShardRouter`] against per-shard depth counters instead.

use crate::admission::{AdmissionController, StagedWindow};
use crate::durability::{
    recover, write_checkpoint_ref, CheckpointRef, DurabilityConfig, HaloSource, RecoveryReport,
    WalFrame, WalWriter, FP_AFTER_PUBLISH,
};
use crate::index::{IndexMaintainer, IndexReader, IndexStats, SharedIndexStats};
use crate::metrics::ServeMetrics;
use crate::router::ShardRouter;
use crate::scheduler::{Coalescer, FlushLog, FlushRecord, ServeConfig, ServeError};
use crate::versioned::{SnapshotPublisher, SnapshotReader, VersionedStore};
use ripple_core::{DeltaMessage, Footprint, RippleConfig, ShardEngine};
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::partition::halo::HaloInfo;
use ripple_graph::partition::{HashPartitioner, Partitioner, Partitioning};
use ripple_graph::{DynamicGraph, PartitionId, UpdateBatch, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) use crate::scheduler::QueuedUpdate;

/// Queue protocol between the router/handle and one shard worker.
pub(crate) enum ShardMsg {
    /// One raw update routed to this shard.
    Update(QueuedUpdate),
    /// A batch of halo deltas shipped by one of a peer shard's committed
    /// windows. The `(from, window_seq)` tag makes delivery idempotent:
    /// recovery re-ships every replayed window's outgoing deltas (they may
    /// have been in flight at the crash), and receivers drop any batch at
    /// or below their per-sender watermark.
    Halos {
        /// The shipping shard.
        from: PartitionId,
        /// The shipping shard's window that produced these deltas.
        window_seq: u64,
        /// The deltas themselves.
        messages: Vec<DeltaMessage>,
    },
    /// Force the current window closed; replies with the epoch after flush.
    Flush(mpsc::Sender<u64>),
    /// Flush, then exit the worker loop.
    Stop,
}

/// Commit bookkeeping one staged shard window carries from its WAL append
/// to its publication (the sharded analogue of the single-engine
/// scheduler's payload): the window's own inputs plus the post-commit
/// counters predicted at append time.
struct ShardWindowCommit {
    batch: UpdateBatch,
    halos: Vec<DeltaMessage>,
    halo_sources: Vec<HaloSource>,
    /// Number of [`ShardMsg::Halos`] batches behind `halos` (in-flight
    /// accounting released once the window commits).
    halo_batches: u64,
    raw: u64,
    enqueues: Vec<Instant>,
    epoch: u64,
    applied_seq: u64,
    applied_secondary: u64,
    topology_epoch: u64,
}

/// One shard's scheduler state machine (the sharded analogue of
/// [`crate::UpdateScheduler`]).
struct ShardWorker {
    /// This worker's own partition id (stamps outgoing halo batches).
    part: PartitionId,
    engine: ShardEngine,
    publisher: SnapshotPublisher,
    /// IVF top-k index over this shard's **owned** rows (present iff
    /// [`ServeConfig::index`]); published before the store each flush.
    index: Option<IndexMaintainer>,
    config: ServeConfig,
    metrics: Arc<ServeMetrics>,
    window: Coalescer,
    /// Halo deltas received from peers since the last flush.
    pending_halos: Vec<DeltaMessage>,
    /// One `(sender, window_seq, count)` run per accepted halo batch behind
    /// `pending_halos`, in arrival order — logged into the next frame so
    /// recovery can restore the dedup watermarks.
    pending_halo_sources: Vec<HaloSource>,
    /// Number of [`ShardMsg::Halos`] batches behind `pending_halos` —
    /// the in-flight counter is decremented per batch once applied.
    pending_halo_batches: u64,
    /// Per-sender dedup watermarks: the highest peer `window_seq` whose
    /// halo batch this shard has accepted, indexed by [`PartitionId`]. A
    /// re-shipped batch at or below the watermark is dropped, so recovery's
    /// re-delivery applies exactly once.
    halo_watermarks: Vec<u64>,
    /// Arrival instant of the oldest unapplied halo batch, so halo-only
    /// windows still close on the time window.
    halo_oldest: Option<Instant>,
    applied_seq: u64,
    /// Of `applied_seq`, how many were secondary route copies of
    /// cross-shard edge updates (see the staleness dedup in
    /// [`crate::QueryService`]).
    applied_secondary: u64,
    /// Monotone sequence of this shard's logged windows.
    window_seq: u64,
    /// This shard's write-ahead log (present iff the tier has
    /// [`ServeConfig::durability`]; each shard logs under its own
    /// subdirectory).
    wal: Option<WalWriter>,
    /// The shard-scoped durability configuration behind `wal`.
    durability: Option<DurabilityConfig>,
    flush_log: Option<FlushLog>,
    /// This shard's queue-depth counter (decremented as updates are
    /// absorbed; the router enforces backpressure against it).
    depth: Arc<AtomicUsize>,
    /// Tier-wide count of halo batches sent but not yet applied.
    halo_in_flight: Arc<AtomicU64>,
    /// Senders to every shard of the tier, indexed by [`PartitionId`].
    peers: Vec<Sender<ShardMsg>>,
    /// Concurrent window admission (present iff the tier's
    /// [`ServeConfig::admission`] is enabled): windows stage with their WAL
    /// frames unsynced, the group fsyncs once and commits in `window_seq`
    /// order at drain.
    admission: Option<AdmissionController<ShardWindowCommit>>,
}

impl ShardWorker {
    /// Flushes the pending window: applies the coalesced batch plus the
    /// received halos through the shard engine, publishes the shard's next
    /// epoch, and ships outgoing cross-shard deltas. A window holding only
    /// halos still runs the engine and publishes.
    ///
    /// With concurrent admission on this is the *full-visibility* path: the
    /// pending window stages and the whole in-flight group commits.
    fn flush(&mut self) -> crate::Result<u64> {
        if self.admission.is_some() {
            self.stage_window()?;
            return self.drain_staged();
        }
        if self.window.raw_len() == 0 && self.pending_halos.is_empty() {
            return Ok(self.publisher.epoch());
        }
        let (batch, raw, secondary, enqueues) = self.window.drain();
        let halos = std::mem::take(&mut self.pending_halos);
        let halo_sources = std::mem::take(&mut self.pending_halo_sources);
        let halo_batches = std::mem::take(&mut self.pending_halo_batches);
        self.halo_oldest = None;
        let ran_engine = !batch.is_empty() || !halos.is_empty();
        // Log before apply, including the halos absorbed this window: peer
        // shards log their *received* halos in their own frames, so replay
        // of a shard's log alone reproduces its store. Outgoing deltas are
        // *re-shipped* on replay (they may have been in flight at a crash);
        // the logged `(sender, window_seq)` runs are what lets receivers
        // restore the watermarks that dedup the re-delivery.
        self.window_seq += 1;
        if let Some(wal) = &mut self.wal {
            let frame = WalFrame {
                window_seq: self.window_seq,
                epoch: self.publisher.epoch() + 1,
                applied_seq: self.applied_seq + raw,
                applied_secondary: self.applied_secondary + secondary,
                topology_epoch: self.engine.topology_epoch() + u64::from(ran_engine),
                raw,
                batch: batch.clone(),
                halos: halos.clone(),
                halo_sources: halo_sources.clone(),
            };
            if let Err(e) = wal.append(&frame) {
                // The worker is about to exit; release the in-flight
                // accounting so peers' quiesce loops can observe the
                // failure instead of spinning.
                if halo_batches > 0 {
                    self.halo_in_flight
                        .fetch_sub(halo_batches, Ordering::AcqRel);
                }
                return Err(e);
            }
        }
        self.advance_watermarks(&halo_sources);
        let mut outgoing = Vec::new();
        if ran_engine {
            match self.engine.process_window(&batch, &halos) {
                Ok((_stats, shipped)) => outgoing = shipped,
                Err(e) => {
                    self.metrics.record_engine_error();
                    // The worker is about to exit; release the in-flight
                    // accounting so peers' quiesce loops can observe the
                    // failure instead of spinning.
                    if halo_batches > 0 {
                        self.halo_in_flight
                            .fetch_sub(halo_batches, Ordering::AcqRel);
                    }
                    return Err(ServeError::Engine(e));
                }
            }
        }
        self.applied_seq += raw;
        self.applied_secondary += secondary;
        let topology_epoch = self.engine.topology_epoch();
        let dirty: Option<&[VertexId]> = if ran_engine {
            Some(self.engine.dirty_rows())
        } else {
            Some(&[])
        };
        // Index before store, mirroring the single-engine scheduler: index
        // skew can only cost recall, never scores.
        if let Some(index) = &mut self.index {
            index.publish(self.engine.store(), dirty);
        }
        let epoch = self.publisher.publish_stamped(
            self.engine.store(),
            self.applied_seq,
            self.applied_secondary,
            topology_epoch,
            dirty,
        );
        let published_at = Instant::now();
        for enqueued in enqueues {
            self.metrics
                .record_visibility_lag(published_at.saturating_duration_since(enqueued));
        }
        self.metrics.record_flush(raw, ran_engine);
        if let Some(log) = &self.flush_log {
            log.push(FlushRecord {
                window_seq: self.window_seq,
                batch,
                halos,
                raw,
                epoch,
                applied_seq: self.applied_seq,
                topology_epoch,
            });
        }
        // Ship before releasing the incoming accounting: the in-flight
        // counter must never read 0 while this window's follow-on messages
        // are still unsent, or a concurrent quiesce would end early.
        self.ship(self.window_seq, outgoing);
        if halo_batches > 0 {
            self.halo_in_flight
                .fetch_sub(halo_batches, Ordering::AcqRel);
        }
        if let Some(d) = &self.durability {
            if d.fail_points.fire(FP_AFTER_PUBLISH) {
                return Err(ServeError::Wal(format!(
                    "fail point {FP_AFTER_PUBLISH} fired after epoch {epoch} was published"
                )));
            }
            if d.checkpoint_every > 0 && self.window_seq.is_multiple_of(d.checkpoint_every) {
                self.write_shard_checkpoint(self.window_seq, epoch)?;
            }
        }
        Ok(epoch)
    }

    /// Closes the pending window and stages it with the admission
    /// controller: footprint it (batch cone plus the forward cones of every
    /// received halo target), WAL-append it unsynced, predict its
    /// post-commit stamps and reserve it. A conflicting window first forces
    /// the staged group to commit and is serialized behind it.
    fn stage_window(&mut self) -> crate::Result<Option<u64>> {
        if self.window.raw_len() == 0 && self.pending_halos.is_empty() {
            return Ok(None);
        }
        let (batch, raw, secondary, enqueues) = self.window.drain();
        let halos = std::mem::take(&mut self.pending_halos);
        let halo_sources = std::mem::take(&mut self.pending_halo_sources);
        let halo_batches = std::mem::take(&mut self.pending_halo_batches);
        self.halo_oldest = None;
        let ran_engine = !batch.is_empty() || !halos.is_empty();
        let compute_footprint = |engine: &ShardEngine| {
            let graph = engine.graph();
            let model = engine.model();
            let mut fp = Footprint::for_batch(graph, model, &batch);
            // A delta deposited at hop `h` re-evaluates its target and fans
            // out along out-edges at every later hop, so each halo target's
            // whole forward cone joins the window's footprint.
            fp.extend_cone(graph, model.num_layers(), halos.iter().map(|m| m.target));
            fp
        };
        let mut footprint = compute_footprint(&self.engine);
        let conflicted = {
            let ctl = self
                .admission
                .as_ref()
                .expect("stage_window without admission");
            !ctl.admits(&footprint)
        };
        if conflicted {
            self.metrics.record_conflict();
        }
        let must_drain = conflicted || self.admission.as_ref().expect("checked above").is_full();
        let mut drained = None;
        if must_drain {
            drained = Some(self.drain_staged()?);
            if conflicted {
                // The drained group committed the writes this window's cone
                // intersects; edges it added can extend that cone, so the
                // pre-drain footprint is stale. Re-footprint against the
                // post-commit topology to keep the staged set's documented
                // pairwise disjointness actually true. (The is_full drain
                // is safe without this: an admitted window's cone cannot
                // reach edges added inside write sets it is disjoint from.)
                footprint = compute_footprint(&self.engine);
            }
        }
        // Chain the predicted post-commit stamps off the last staged window
        // (or the live counters when the group is empty); the WAL frame
        // records them so recovery replay lands on the same stamps.
        let ctl = self.admission.as_ref().expect("checked above");
        let (base_epoch, base_applied, base_secondary, base_topo) = match ctl.last() {
            Some(w) => (
                w.payload.epoch,
                w.payload.applied_seq,
                w.payload.applied_secondary,
                w.payload.topology_epoch,
            ),
            None => (
                self.publisher.epoch(),
                self.applied_seq,
                self.applied_secondary,
                self.engine.topology_epoch(),
            ),
        };
        self.window_seq += 1;
        let commit = ShardWindowCommit {
            epoch: base_epoch + 1,
            applied_seq: base_applied + raw,
            applied_secondary: base_secondary + secondary,
            topology_epoch: base_topo + u64::from(ran_engine),
            batch,
            halos,
            halo_sources,
            halo_batches,
            raw,
            enqueues,
        };
        if let Some(wal) = &mut self.wal {
            let frame = WalFrame {
                window_seq: self.window_seq,
                epoch: commit.epoch,
                applied_seq: commit.applied_seq,
                applied_secondary: commit.applied_secondary,
                topology_epoch: commit.topology_epoch,
                raw: commit.raw,
                batch: commit.batch.clone(),
                halos: commit.halos.clone(),
                halo_sources: commit.halo_sources.clone(),
            };
            if let Err(e) = wal.append_unsynced(&frame) {
                // The worker is about to exit; release this window's and
                // every staged window's accounting so quiesce observes the
                // failure instead of spinning.
                self.release_halo_accounting(commit.halo_batches);
                self.release_staged_accounting();
                return Err(e);
            }
        }
        self.advance_watermarks(&commit.halo_sources);
        self.admission
            .as_mut()
            .expect("checked above")
            .reserve(StagedWindow::pending(self.window_seq, footprint, commit));
        Ok(drained)
    }

    /// Commits the staged group: one fsync covering every appended frame,
    /// then each window executes and publishes individually, in
    /// `window_seq` order — outgoing deltas ship per window, tagged with
    /// that window's sequence. Returns the last published epoch (the
    /// current epoch if nothing was staged).
    fn drain_staged(&mut self) -> crate::Result<u64> {
        let mut group = match self.admission.as_mut() {
            Some(ctl) if !ctl.is_empty() => ctl.take_group(),
            _ => return Ok(self.publisher.epoch()),
        };
        if let Some(wal) = &mut self.wal {
            if let Err(e) = wal.sync() {
                let pending: u64 = group.iter().map(|w| w.payload.halo_batches).sum();
                self.release_halo_accounting(pending);
                return Err(e);
            }
        }
        let first_seq = group.first().map(StagedWindow::seq).unwrap_or(0);
        let last_seq = group.last().map(StagedWindow::seq).unwrap_or(0);
        let mut epoch = self.publisher.epoch();
        for i in 0..group.len() {
            let seq = group[i].seq();
            let window = &mut group[i];
            let ran_engine = !window.payload.batch.is_empty() || !window.payload.halos.is_empty();
            let mut outgoing = Vec::new();
            if ran_engine {
                match self
                    .engine
                    .process_window(&window.payload.batch, &window.payload.halos)
                {
                    Ok((_stats, shipped)) => outgoing = shipped,
                    Err(e) => {
                        self.metrics.record_engine_error();
                        let pending: u64 = group[i..].iter().map(|w| w.payload.halo_batches).sum();
                        self.release_halo_accounting(pending);
                        return Err(ServeError::Engine(e));
                    }
                }
            }
            self.applied_seq = window.payload.applied_seq;
            self.applied_secondary = window.payload.applied_secondary;
            let topology_epoch = self.engine.topology_epoch();
            debug_assert_eq!(
                topology_epoch, window.payload.topology_epoch,
                "predicted topology epoch drifted"
            );
            let dirty: Option<&[VertexId]> = if ran_engine {
                Some(self.engine.dirty_rows())
            } else {
                Some(&[])
            };
            if let Some(index) = &mut self.index {
                index.publish(self.engine.store(), dirty);
            }
            epoch = self.publisher.publish_stamped(
                self.engine.store(),
                self.applied_seq,
                self.applied_secondary,
                topology_epoch,
                dirty,
            );
            debug_assert_eq!(epoch, window.payload.epoch, "predicted epoch drifted");
            let published_at = Instant::now();
            for enqueued in window.payload.enqueues.drain(..) {
                self.metrics
                    .record_visibility_lag(published_at.saturating_duration_since(enqueued));
            }
            self.metrics.record_flush(window.payload.raw, ran_engine);
            if let Some(log) = &self.flush_log {
                log.push(FlushRecord {
                    window_seq: seq,
                    batch: std::mem::replace(&mut window.payload.batch, UpdateBatch::new()),
                    halos: std::mem::take(&mut window.payload.halos),
                    raw: window.payload.raw,
                    epoch,
                    applied_seq: self.applied_seq,
                    topology_epoch,
                });
            }
            // Ship before releasing the incoming accounting, as in the
            // serial path: the counter must never read 0 while follow-on
            // messages are unsent.
            let halo_batches = window.payload.halo_batches;
            window.commit();
            self.ship(seq, outgoing);
            self.release_halo_accounting(halo_batches);
        }
        self.metrics.record_admission_group(group.len() as u64);
        if let Some(d) = &self.durability {
            if d.fail_points.fire(FP_AFTER_PUBLISH) {
                return Err(ServeError::Wal(format!(
                    "fail point {FP_AFTER_PUBLISH} fired after epoch {epoch} was published"
                )));
            }
            // One checkpoint per group at most, cut iff the group crossed a
            // cadence boundary.
            if d.checkpoint_every > 0
                && last_seq / d.checkpoint_every > first_seq.saturating_sub(1) / d.checkpoint_every
            {
                self.write_shard_checkpoint(last_seq, epoch)?;
            }
        }
        Ok(epoch)
    }

    /// Streams a checkpoint of the live shard state (no graph/store clone),
    /// including the per-sender halo watermarks as of the logged windows.
    fn write_shard_checkpoint(&self, window_seq: u64, epoch: u64) -> crate::Result<()> {
        let d = self
            .durability
            .as_ref()
            .expect("checkpoint without durability");
        let watermarks: Vec<(PartitionId, u64)> = self
            .halo_watermarks
            .iter()
            .enumerate()
            .map(|(p, &seq)| (PartitionId(p as u32), seq))
            .collect();
        write_checkpoint_ref(
            &d.dir,
            &CheckpointRef {
                window_seq,
                epoch,
                applied_seq: self.applied_seq,
                applied_secondary: self.applied_secondary,
                topology_epoch: self.engine.topology_epoch(),
                graph: self.engine.graph(),
                store: self.engine.store(),
                halo_watermarks: &watermarks,
            },
            d.fsync,
            &d.fail_points,
        )
    }

    /// Advances the per-sender dedup watermarks for halo batches whose
    /// `(sender, window_seq)` runs have just been WAL-logged. Watermarks
    /// track *logged* batches only, so a checkpoint's watermarks never get
    /// ahead of its store — a batch accepted but not yet logged at a crash
    /// is re-accepted when the sender's recovery re-ships it.
    fn advance_watermarks(&mut self, sources: &[HaloSource]) {
        for source in sources {
            let slot = &mut self.halo_watermarks[source.from.index()];
            *slot = (*slot).max(source.window_seq);
        }
    }

    /// Releases `batches` applied (or abandoned) halo batches from the
    /// tier-wide in-flight counter.
    fn release_halo_accounting(&self, batches: u64) {
        if batches > 0 {
            self.halo_in_flight.fetch_sub(batches, Ordering::AcqRel);
        }
    }

    /// Releases the accounting of every still-staged window (the worker is
    /// about to exit on an error).
    fn release_staged_accounting(&mut self) {
        if let Some(ctl) = &mut self.admission {
            let staged: u64 = ctl
                .take_group()
                .iter()
                .map(|w| w.payload.halo_batches)
                .sum();
            self.release_halo_accounting(staged);
        }
    }

    /// Delivers one window's outgoing deltas, one [`ShardMsg::Halos`] batch
    /// per destination shard, tagged `(self.part, window_seq)` so receivers
    /// can deduplicate re-delivery.
    fn ship(&self, window_seq: u64, outgoing: Vec<(PartitionId, DeltaMessage)>) {
        let mut per_part: Vec<Vec<DeltaMessage>> = vec![Vec::new(); self.peers.len()];
        for (part, message) in outgoing {
            per_part[part.index()].push(message);
        }
        for (part, messages) in per_part.into_iter().enumerate() {
            if messages.is_empty() {
                continue;
            }
            self.halo_in_flight.fetch_add(1, Ordering::AcqRel);
            let msg = ShardMsg::Halos {
                from: self.part,
                window_seq,
                messages,
            };
            if self.peers[part].send(msg).is_err() {
                // The peer already exited (engine error / shutdown): the
                // batch is lost, undo its accounting.
                self.halo_in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Closes the current window on a size trigger: a serial flush, or —
    /// with admission on — a stage that drains only once the in-flight set
    /// fills (conflicts inside [`ShardWorker::stage_window`] also drain).
    fn close_window(&mut self) -> crate::Result<()> {
        if self.admission.is_some() {
            self.stage_window()?;
            if self.admission.as_ref().is_some_and(|c| c.is_full()) {
                self.drain_staged()?;
            }
            Ok(())
        } else {
            self.flush().map(|_| ())
        }
    }

    /// Drains the shard queue until every sender hangs up or a stop message
    /// arrives, flushing on the size and time windows.
    fn run(mut self, rx: Receiver<ShardMsg>) -> Result<ShardEngine, ServeError> {
        loop {
            let window_deadline = self.window.deadline(self.config.max_delay);
            let halo_deadline = self.halo_oldest.map(|t| t + self.config.max_delay);
            let staged_deadline = self
                .admission
                .as_ref()
                .and_then(|c| c.deadline(self.config.max_delay));
            let deadline = [window_deadline, halo_deadline, staged_deadline]
                .into_iter()
                .flatten()
                .min();
            let wake = match deadline {
                Some(deadline) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(budget) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            self.flush()?;
                            return Ok(self.engine);
                        }
                    }
                }
                None => match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => return Ok(self.engine),
                },
            };
            match wake {
                Some(ShardMsg::Update(queued)) => {
                    self.depth.fetch_sub(1, Ordering::AcqRel);
                    self.window.push(queued, &self.metrics);
                    if self.window.raw_len() >= self.config.max_batch as u64 {
                        self.close_window()?;
                    }
                }
                Some(ShardMsg::Halos {
                    from,
                    window_seq,
                    messages,
                }) => {
                    if window_seq <= self.halo_watermarks[from.index()] {
                        // A re-shipped batch this shard already logged
                        // (recovery re-delivers every replayed window's
                        // outgoing deltas): drop it, release its accounting.
                        self.release_halo_accounting(1);
                        continue;
                    }
                    self.halo_oldest.get_or_insert_with(Instant::now);
                    self.pending_halo_sources.push(HaloSource {
                        from,
                        window_seq,
                        count: messages.len() as u32,
                    });
                    self.pending_halos.extend(messages);
                    self.pending_halo_batches += 1;
                    // Heavy cross-shard traffic closes the size window too,
                    // so the halo mailbox cannot buffer unboundedly.
                    if self.pending_halos.len() >= self.config.max_batch {
                        self.close_window()?;
                    }
                }
                Some(ShardMsg::Flush(ack)) => {
                    let epoch = self.flush()?;
                    // The caller may have given up waiting; ignore that.
                    let _ = ack.send(epoch);
                }
                Some(ShardMsg::Stop) => {
                    self.flush()?;
                    return Ok(self.engine);
                }
                // Time window expired.
                None => {
                    self.flush()?;
                }
            }
        }
    }
}

/// The per-shard engines recovered by [`ShardedServeHandle::shutdown`].
#[derive(Debug)]
pub struct ShardedEngines {
    engines: Vec<ShardEngine>,
    partitioning: Arc<Partitioning>,
}

impl ShardedEngines {
    /// The shard engines, indexed by [`PartitionId`].
    pub fn engines(&self) -> &[ShardEngine] {
        &self.engines
    }

    /// Consumes the handle, yielding the shard engines.
    pub fn into_engines(self) -> Vec<ShardEngine> {
        self.engines
    }

    /// The partitioning the tier served under.
    pub fn partitioning(&self) -> &Arc<Partitioning> {
        &self.partitioning
    }

    /// Assembles the authoritative global store by gathering every shard's
    /// owned rows.
    pub fn gather_store(&self) -> EmbeddingStore {
        let mut out = self.engines[0].store().clone();
        for engine in &self.engines {
            engine.gather_into(&mut out);
        }
        out
    }
}

/// Handle onto a running sharded serving session (see [`spawn_sharded`]).
///
/// The sharded counterpart of [`crate::ServeHandle`]; both implement
/// [`crate::ServeFrontend`], so load generators and consistency suites run
/// unchanged against either topology.
#[derive(Debug)]
pub struct ShardedServeHandle {
    txs: Vec<Sender<ShardMsg>>,
    depths: Vec<Arc<AtomicUsize>>,
    alive: Vec<Arc<AtomicBool>>,
    submitted: Vec<Arc<AtomicU64>>,
    /// Per-shard secondary (duplicate-delivery) submission counters,
    /// paired with `submitted` for deduplicated staleness stamps.
    secondary_submitted: Vec<Arc<AtomicU64>>,
    total_submitted: Arc<AtomicU64>,
    halo_in_flight: Arc<AtomicU64>,
    metrics: Arc<ServeMetrics>,
    readers: Vec<SnapshotReader>,
    /// Per-shard IVF index readers (present iff [`ServeConfig::index`]).
    index_readers: Option<Vec<IndexReader>>,
    /// Per-shard index maintenance counters (empty when indexing is off).
    index_stats: Vec<Arc<SharedIndexStats>>,
    partitioning: Arc<Partitioning>,
    flush_logs: Vec<FlushLog>,
    halo_replicas: usize,
    config: ServeConfig,
    /// Per-shard recovery reports (one per shard iff the tier was spawned
    /// with [`ServeConfig::durability`]; empty otherwise).
    recovery: Vec<RecoveryReport>,
    /// Per-shard terminal-failure slots, filled by a worker before it
    /// exits abnormally.
    failures: Vec<Arc<Mutex<Option<ServeError>>>>,
    joins: Vec<JoinHandle<Result<ShardEngine, ServeError>>>,
}

impl ShardedServeHandle {
    /// A new producer handle that hash-routes updates to their owners.
    pub fn client(&self) -> ShardRouter {
        ShardRouter::new(
            self.txs.clone(),
            self.depths.clone(),
            self.alive.clone(),
            self.submitted.clone(),
            self.secondary_submitted.clone(),
            Arc::clone(&self.total_submitted),
            Arc::clone(&self.partitioning),
            Arc::clone(&self.metrics),
            self.config.policy,
            self.config.queue_capacity,
        )
    }

    /// A new query handle reading every shard's epoch sequence (each reader
    /// thread should own one).
    pub fn query_service(&self) -> crate::QueryService {
        crate::QueryService::new_sharded(
            self.readers.clone(),
            self.index_readers.clone(),
            self.submitted.clone(),
            self.secondary_submitted.clone(),
            Arc::clone(&self.partitioning),
            Arc::clone(&self.metrics),
        )
    }

    /// The shared serving metrics (aggregated across shards).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Index maintenance counters summed across shards, or `None` when the
    /// session was spawned with [`crate::ServeConfigBuilder::no_index`].
    pub fn index_stats(&self) -> Option<IndexStats> {
        if self.index_stats.is_empty() {
            return None;
        }
        Some(
            self.index_stats
                .iter()
                .map(|s| s.snapshot())
                .fold(IndexStats::default(), IndexStats::merged),
        )
    }

    /// Number of shards behind this session.
    pub fn num_shards(&self) -> usize {
        self.txs.len()
    }

    /// The partitioning updates are routed by.
    pub fn partitioning(&self) -> &Arc<Partitioning> {
        &self.partitioning
    }

    /// Halo replicas of the bootstrap partitioning — vertices visible from
    /// a shard that does not own them (the cross-shard coupling the tier
    /// pays delta messages for).
    pub fn halo_replicas(&self) -> usize {
        self.halo_replicas
    }

    /// One flush round: forces every shard's window closed and returns the
    /// minimum per-shard epoch afterwards. Returns `None` once any shard
    /// has stopped. Cross-shard deltas produced by these flushes may still
    /// be in flight afterwards — use [`ShardedServeHandle::quiesce`] to
    /// drain them.
    pub fn flush(&self) -> Option<u64> {
        let mut acks = Vec::with_capacity(self.txs.len());
        for tx in &self.txs {
            let (ack_tx, ack_rx) = mpsc::channel();
            tx.send(ShardMsg::Flush(ack_tx)).ok()?;
            acks.push(ack_rx);
        }
        let mut min_epoch = u64::MAX;
        for ack in acks {
            min_epoch = min_epoch.min(ack.recv().ok()?);
        }
        Some(min_epoch)
    }

    /// Flushes repeatedly until no cross-shard delta is in flight and every
    /// shard queue is empty, then returns the minimum per-shard epoch.
    /// Converges in at most `num_layers` rounds once producers stop
    /// (messages only move to strictly higher hops).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardFailed`] naming the failed shard once any shard
    /// has stopped abnormally (engine failure, WAL failure, or panic).
    pub fn quiesce(&self) -> crate::Result<u64> {
        loop {
            let Some(epoch) = self.flush() else {
                return Err(self.tier_failure());
            };
            if self.halo_in_flight.load(Ordering::Acquire) == 0
                && self.depths.iter().all(|d| d.load(Ordering::Acquire) == 0)
            {
                return Ok(epoch);
            }
        }
    }

    /// Per-shard recovery reports, indexed by [`PartitionId`] (one per
    /// shard iff the tier was spawned with [`ServeConfig::durability`]).
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.recovery.clone()
    }

    /// The typed failure of the first shard that stopped abnormally.
    fn tier_failure(&self) -> ServeError {
        for (p, slot) in self.failures.iter().enumerate() {
            let failed = slot.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(error) = failed {
                return ServeError::ShardFailed {
                    shard: p as u32,
                    error: Box::new(error),
                };
            }
        }
        ServeError::SchedulerPanicked
    }

    /// The per-shard flush logs, indexed by [`PartitionId`] (empty unless
    /// [`ServeConfig::record_batches`] is set); cloned so they stay
    /// readable after [`ShardedServeHandle::shutdown`].
    pub fn flush_logs(&self) -> Vec<FlushLog> {
        self.flush_logs.clone()
    }

    /// Quiesces the tier, stops every shard worker and returns the shard
    /// engines (with every accepted update and cross-shard delta applied).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardFailed`] naming the first shard that stopped
    /// abnormally and carrying its typed failure (engine error, WAL error,
    /// or [`ServeError::SchedulerPanicked`] for a caught panic).
    pub fn shutdown(self) -> Result<ShardedEngines, ServeError> {
        // Drain in-flight halos first so the recovered engines are at
        // quiescence; a dead shard aborts the drain and surfaces its error
        // from the join below.
        let _ = self.quiesce();
        for tx in &self.txs {
            let _ = tx.send(ShardMsg::Stop);
        }
        let mut engines = Vec::with_capacity(self.joins.len());
        for (p, join) in self.joins.into_iter().enumerate() {
            let shard = p as u32;
            match join.join() {
                Ok(Ok(engine)) => engines.push(engine),
                Ok(Err(e)) => {
                    return Err(ServeError::ShardFailed {
                        shard,
                        error: Box::new(e),
                    })
                }
                Err(_) => {
                    return Err(ServeError::ShardFailed {
                        shard,
                        error: Box::new(ServeError::SchedulerPanicked),
                    })
                }
            }
        }
        Ok(ShardedEngines {
            engines,
            partitioning: self.partitioning,
        })
    }
}

/// Spawns a sharded serving session: hash-partitions `graph` into `shards`
/// parts, builds one halo-restricted [`ShardEngine`] per part from the
/// bootstrapped `store`, and runs each behind its own scheduler thread and
/// snapshot publisher. Every shard's bootstrap store is published as its
/// epoch 0, so queries work immediately.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] if `shards` is zero or exceeds the
/// vertex count, and [`ServeError::Engine`] if graph/model/store shapes do
/// not fit together.
pub fn spawn_sharded(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    engine_config: RippleConfig,
    config: ServeConfig,
    shards: usize,
) -> crate::Result<ShardedServeHandle> {
    if shards == 0 {
        return Err(ServeError::InvalidConfig(
            "a sharded session needs at least one shard".to_string(),
        ));
    }
    let partitioning = Arc::new(
        HashPartitioner::new()
            .partition(graph, shards)
            .map_err(|e| ServeError::InvalidConfig(format!("partitioning failed: {e}")))?,
    );
    let halo_replicas = HaloInfo::compute(graph, &partitioning).total_halo_replicas();

    let metrics = Arc::new(ServeMetrics::new());
    let total_submitted = Arc::new(AtomicU64::new(0));
    let halo_in_flight = Arc::new(AtomicU64::new(0));
    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }

    let mut depths = Vec::with_capacity(shards);
    let mut alive = Vec::with_capacity(shards);
    let mut submitted = Vec::with_capacity(shards);
    let mut secondary_submitted = Vec::with_capacity(shards);
    let mut readers = Vec::with_capacity(shards);
    let mut index_readers = config.index.map(|_| Vec::with_capacity(shards));
    let mut index_stats = Vec::new();
    let mut flush_logs = Vec::new();
    let mut recovery = Vec::new();
    let mut failures = Vec::with_capacity(shards);
    let mut joins = Vec::with_capacity(shards);

    for (p, rx) in rxs.into_iter().enumerate() {
        let part = PartitionId(p as u32);
        let mut engine = ShardEngine::new(
            graph,
            model.clone(),
            store.clone(),
            engine_config,
            Arc::clone(&partitioning),
            part,
        )?;
        // Per-shard durability: each shard logs and checkpoints its own
        // window sequence under `dir/shard-{p}/` and recovers it here,
        // exactly like the single-engine scheduler. Replay feeds each
        // frame's batch *and* logged received halos back through the
        // engine and discards the regenerated outgoing deltas — the peers
        // hold their own logs.
        let started = Instant::now();
        let durability = config.durability.as_ref().map(|d| d.for_shard(p));
        let mut window_seq = 0;
        let mut applied_seq = 0;
        let mut applied_secondary = 0;
        let mut epoch = 0;
        let mut halo_watermarks = vec![0u64; shards];
        let wal = match &durability {
            Some(d) => {
                let recovered = recover(&d.dir)?;
                let mut report = RecoveryReport {
                    from_checkpoint: false,
                    checkpoint_seq: 0,
                    replayed_windows: 0,
                    resumed_window_seq: recovered.resumed_window_seq(),
                    resumed_epoch: 0,
                    dropped_tail_bytes: recovered.dropped_tail_bytes,
                    recovery_time: Duration::ZERO,
                };
                if let Some(ckpt) = recovered.checkpoint {
                    report.from_checkpoint = true;
                    report.checkpoint_seq = ckpt.window_seq;
                    window_seq = ckpt.window_seq;
                    applied_seq = ckpt.applied_seq;
                    applied_secondary = ckpt.applied_secondary;
                    epoch = ckpt.epoch;
                    for (sender, seq) in &ckpt.halo_watermarks {
                        if let Some(slot) = halo_watermarks.get_mut(sender.index()) {
                            *slot = (*slot).max(*seq);
                        }
                    }
                    engine
                        .restore_state(ckpt.graph, ckpt.store, ckpt.topology_epoch)
                        .map_err(ServeError::Engine)?;
                }
                for frame in &recovered.frames {
                    let mut outgoing = Vec::new();
                    if !frame.batch.is_empty() || !frame.halos.is_empty() {
                        let (_stats, shipped) = engine
                            .process_window(&frame.batch, &frame.halos)
                            .map_err(ServeError::Engine)?;
                        outgoing = shipped;
                    }
                    // The frame's logged halo runs advance the dedup
                    // watermarks, exactly as they did when first logged.
                    for source in &frame.halo_sources {
                        if let Some(slot) = halo_watermarks.get_mut(source.from.index()) {
                            *slot = (*slot).max(source.window_seq);
                        }
                    }
                    // Re-ship the regenerated outgoing deltas: the originals
                    // may have been in flight (unapplied by their receivers)
                    // at the crash. Receivers whose logs already cover this
                    // `(shard, window_seq)` drop the duplicates.
                    let mut per_part: Vec<Vec<DeltaMessage>> = vec![Vec::new(); shards];
                    for (dest, message) in outgoing {
                        per_part[dest.index()].push(message);
                    }
                    for (dest, messages) in per_part.into_iter().enumerate() {
                        if messages.is_empty() {
                            continue;
                        }
                        halo_in_flight.fetch_add(1, Ordering::AcqRel);
                        let msg = ShardMsg::Halos {
                            from: part,
                            window_seq: frame.window_seq,
                            messages,
                        };
                        if txs[dest].send(msg).is_err() {
                            halo_in_flight.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                    report.replayed_windows += 1;
                    window_seq = frame.window_seq;
                    applied_seq = frame.applied_seq;
                    applied_secondary = frame.applied_secondary;
                    epoch = frame.epoch;
                }
                report.resumed_epoch = epoch;
                report.recovery_time = started.elapsed();
                recovery.push(report);
                Some(WalWriter::open(
                    &d.dir,
                    window_seq + 1,
                    d.segment_bytes,
                    d.fsync,
                    d.fail_points.clone(),
                )?)
            }
            None => None,
        };
        let (publisher, reader) = VersionedStore::bootstrap_at(
            engine.store(),
            epoch,
            applied_seq,
            applied_secondary,
            engine.topology_epoch(),
        );
        readers.push(reader);
        // Each shard indexes only the rows it owns: the merged approximate
        // read scores every candidate from its owner's snapshot, exactly
        // like the merged exact scan.
        let index = config.index.map(|params| {
            let owned: Vec<bool> = partitioning
                .assignment()
                .iter()
                .map(|owner| *owner == part)
                .collect();
            let (maintainer, index_reader) =
                IndexMaintainer::bootstrap(engine.store(), Some(owned), params);
            if let Some(list) = &mut index_readers {
                list.push(index_reader);
            }
            index_stats.push(maintainer.shared_stats());
            maintainer
        });
        let flush_log = config.record_batches.then(FlushLog::new);
        if let Some(log) = &flush_log {
            flush_logs.push(log.clone());
        }
        let depth = Arc::new(AtomicUsize::new(0));
        depths.push(Arc::clone(&depth));
        let alive_flag = Arc::new(AtomicBool::new(true));
        alive.push(Arc::clone(&alive_flag));
        submitted.push(Arc::new(AtomicU64::new(0)));
        secondary_submitted.push(Arc::new(AtomicU64::new(0)));
        let failure: Arc<Mutex<Option<ServeError>>> = Arc::new(Mutex::new(None));
        failures.push(Arc::clone(&failure));
        let admission = config
            .admission
            .enabled
            .then(|| AdmissionController::new(config.admission.max_inflight));
        let worker = ShardWorker {
            part,
            engine,
            publisher,
            index,
            config: config.clone(),
            metrics: Arc::clone(&metrics),
            window: Coalescer::default(),
            pending_halos: Vec::new(),
            pending_halo_sources: Vec::new(),
            pending_halo_batches: 0,
            halo_watermarks,
            halo_oldest: None,
            applied_seq,
            applied_secondary,
            window_seq,
            wal,
            durability,
            flush_log,
            depth,
            halo_in_flight: Arc::clone(&halo_in_flight),
            peers: txs.clone(),
            admission,
        };
        let join = std::thread::Builder::new()
            .name(format!("ripple-serve-shard-{p}"))
            .spawn(move || {
                // Clear the liveness flag on any exit — clean, engine error
                // or panic — so blocked routers observe the dead shard.
                struct AliveGuard(Arc<AtomicBool>);
                impl Drop for AliveGuard {
                    fn drop(&mut self) {
                        self.0.store(false, Ordering::Release);
                    }
                }
                let _guard = AliveGuard(alive_flag);
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run(rx)))
                        .unwrap_or(Err(ServeError::SchedulerPanicked));
                if let Err(e) = &result {
                    *failure.lock().unwrap_or_else(|e| e.into_inner()) = Some(e.clone());
                }
                result
            })
            .expect("spawning a shard worker thread");
        joins.push(join);
    }

    Ok(ShardedServeHandle {
        txs,
        depths,
        alive,
        submitted,
        secondary_submitted,
        total_submitted,
        halo_in_flight,
        metrics,
        readers,
        index_readers,
        index_stats,
        partitioning,
        flush_logs,
        halo_replicas,
        config,
        recovery,
        failures,
        joins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeFrontend, Submission};
    use ripple_core::RippleEngine;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;
    use ripple_graph::{GraphUpdate, UpdateBatch};

    fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
        let full = DatasetSpec::custom(150, 5.0, 6, 4).generate(seed).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let updates = plan
            .batches(1)
            .into_iter()
            .flat_map(UpdateBatch::into_updates)
            .collect();
        (plan.snapshot, model, store, updates)
    }

    #[test]
    fn sharded_session_matches_the_serial_engine_at_quiescence() {
        let (graph, model, store, updates) = bootstrap(21);
        let config = ServeConfig::builder().max_batch(8).build().unwrap();
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 2).unwrap();
        assert_eq!(handle.num_shards(), 2);
        let client = handle.client();
        let (accepted, last) = client.submit_all(updates.clone());
        assert_eq!(accepted, updates.len());
        assert!(matches!(last, Submission::Enqueued { .. }));
        let epoch = handle.quiesce().expect("tier alive");
        assert!(epoch >= 1);
        let metrics = handle.metrics();
        assert_eq!(
            metrics.applied(),
            metrics.enqueued(),
            "quiesce drains every routed update"
        );
        let engines = handle.shutdown().unwrap();
        let gathered = engines.gather_store();

        let mut serial = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
        for update in updates {
            serial
                .process_batch(&UpdateBatch::from_updates(vec![update]))
                .unwrap();
        }
        let diff = gathered.max_diff_all_layers(serial.store()).unwrap();
        assert!(
            diff < 2e-3,
            "sharded tier drifted from serial replay: {diff}"
        );
    }

    #[test]
    fn sharded_queries_carry_shard_and_epoch_vector_stamps() {
        let (graph, model, store, updates) = bootstrap(23);
        let config = ServeConfig::builder()
            .max_batch(4)
            .record_batches(true)
            .build()
            .unwrap();
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 4).unwrap();
        assert_eq!(handle.flush_logs().len(), 4, "one flush log per shard");
        let client = handle.client();
        let (accepted, _) = client.submit_all(updates.into_iter().take(20));
        assert_eq!(accepted, 20);
        handle.quiesce().unwrap();

        let mut queries = handle.query_service();
        let owner = handle.partitioning().part_of(VertexId(0));
        let e = queries.read_embedding(VertexId(0)).unwrap();
        assert_eq!(e.shard, Some(owner), "point reads name the owning shard");
        assert!(e.epochs.is_none());
        assert_eq!(queries.epoch_vector().len(), 4);
        let top = queries
            .top_k(&crate::TopKRequest::new(vec![1.0, 0.0, 0.0, 0.0], 3))
            .unwrap();
        assert_eq!(top.shard, None);
        assert_eq!(top.epochs.as_ref().map(Vec::len), Some(4));
        assert_eq!(
            top.epoch,
            top.epochs.as_ref().unwrap().iter().copied().min().unwrap()
        );

        let logs = handle.flush_logs();
        let applied = handle.metrics().applied();
        let engines = handle.shutdown().unwrap();
        assert_eq!(engines.engines().len(), 4);
        let recorded: u64 = logs
            .iter()
            .flat_map(|log| log.snapshot())
            .map(|record| record.raw)
            .sum();
        assert_eq!(recorded, applied, "flush logs cover every routed update");
    }

    #[test]
    fn sharded_full_probe_approx_matches_the_exact_scan() {
        let (graph, model, store, updates) = bootstrap(29);
        let config = ServeConfig::builder().max_batch(8).build().unwrap();
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 3).unwrap();
        let client = handle.client();
        client.submit_all(updates.into_iter().take(30));
        handle.quiesce().unwrap();

        let mut queries = handle.query_service();
        let query = vec![0.7, -0.4, 0.2, 0.9];
        let exact = queries
            .top_k(&crate::TopKRequest::new(query.clone(), 5))
            .unwrap();
        // Probing every cluster of every shard visits every owned row, so
        // the merged approximate read must equal the merged exact scan.
        let approx = queries
            .top_k(&crate::TopKRequest::new(query, 5).approx(usize::MAX))
            .unwrap();
        assert_eq!(exact.value, approx.value);
        let stats = handle.index_stats().expect("indexing defaults on");
        assert_eq!(stats.builds, 3, "one bootstrap build per shard");
        assert_eq!(stats.rebuilds, 0, "dirty repair never rebuilds");
        assert!(stats.repairs > 0, "every flush repairs each shard index");
    }

    #[test]
    fn zero_shards_is_rejected() {
        let (graph, model, store, _) = bootstrap(25);
        let result = spawn_sharded(
            &graph,
            &model,
            &store,
            RippleConfig::default(),
            ServeConfig::default(),
            0,
        );
        assert!(
            matches!(result, Err(ServeError::InvalidConfig(_))),
            "zero shards must be rejected"
        );
    }

    #[test]
    fn frontend_trait_is_object_safe_enough_for_generic_drivers() {
        fn drive<F: ServeFrontend>(frontend: &F) -> (u64, usize) {
            let client = frontend.client();
            client.submit(GraphUpdate::add_edge(VertexId(1), VertexId(2)));
            let epoch = frontend.quiesce().unwrap();
            (epoch, frontend.num_shards())
        }
        let (graph, model, store, _) = bootstrap(27);
        let single = crate::spawn(
            RippleEngine::new(
                graph.clone(),
                model.clone(),
                store.clone(),
                RippleConfig::default(),
            )
            .unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        let (epoch, shards) = drive(&single);
        assert!(epoch >= 1);
        assert_eq!(shards, 1);
        single.shutdown().unwrap();

        let sharded = spawn_sharded(
            &graph,
            &model,
            &store,
            RippleConfig::default(),
            ServeConfig::default(),
            2,
        )
        .unwrap();
        let (epoch, shards) = drive(&sharded);
        assert!(epoch >= 1);
        assert_eq!(shards, 2);
        sharded.shutdown().unwrap();
    }
}
