//! The sharded serving tier: hash-partitioned [`ShardEngine`]s, each behind
//! its own scheduler thread and snapshot publisher.
//!
//! [`spawn_sharded`] partitions the bootstrap graph with the workspace's
//! [`HashPartitioner`], builds one halo-restricted [`ShardEngine`] per
//! partition, and runs each on a dedicated worker thread
//! (`ripple-serve-shard-{p}`). Every worker owns the full single-engine
//! serving pipeline for its shard: an update-coalescing window, an
//! epoch-versioned [`SnapshotPublisher`], and — new to this tier — a halo
//! mailbox of delta messages received from peer shards. A flush closes the
//! window, applies the coalesced batch *and* the pending halos through the
//! shard engine, publishes the shard's next epoch, and ships the outgoing
//! cross-shard deltas the window produced to their owners' mailboxes.
//!
//! Epochs therefore form a per-shard **vector clock**, surfaced to readers
//! through [`crate::QueryService`] stamps. At quiescence
//! ([`ShardedServeHandle::quiesce`]) the gathered shard stores match the
//! unsharded engine within float tolerance — the same linearity argument
//! that makes the BSP distributed engine exact, run asynchronously.
//!
//! Shard workers drain **unbounded** channels so halo sends between peers
//! can never deadlock; producer backpressure is enforced at the
//! [`crate::ShardRouter`] against per-shard depth counters instead.

use crate::durability::{
    recover, write_checkpoint, Checkpoint, DurabilityConfig, RecoveryReport, WalFrame, WalWriter,
    FP_AFTER_PUBLISH,
};
use crate::index::{IndexMaintainer, IndexReader, IndexStats, SharedIndexStats};
use crate::metrics::ServeMetrics;
use crate::router::ShardRouter;
use crate::scheduler::{Coalescer, FlushLog, FlushRecord, ServeConfig, ServeError};
use crate::versioned::{SnapshotPublisher, SnapshotReader, VersionedStore};
use ripple_core::{DeltaMessage, RippleConfig, ShardEngine};
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::partition::halo::HaloInfo;
use ripple_graph::partition::{HashPartitioner, Partitioner, Partitioning};
use ripple_graph::{DynamicGraph, PartitionId, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) use crate::scheduler::QueuedUpdate;

/// Queue protocol between the router/handle and one shard worker.
pub(crate) enum ShardMsg {
    /// One raw update routed to this shard.
    Update(QueuedUpdate),
    /// A batch of halo deltas shipped by a peer shard's flush.
    Halos(Vec<DeltaMessage>),
    /// Force the current window closed; replies with the epoch after flush.
    Flush(mpsc::Sender<u64>),
    /// Flush, then exit the worker loop.
    Stop,
}

/// One shard's scheduler state machine (the sharded analogue of
/// [`crate::UpdateScheduler`]).
struct ShardWorker {
    engine: ShardEngine,
    publisher: SnapshotPublisher,
    /// IVF top-k index over this shard's **owned** rows (present iff
    /// [`ServeConfig::index`]); published before the store each flush.
    index: Option<IndexMaintainer>,
    config: ServeConfig,
    metrics: Arc<ServeMetrics>,
    window: Coalescer,
    /// Halo deltas received from peers since the last flush.
    pending_halos: Vec<DeltaMessage>,
    /// Number of [`ShardMsg::Halos`] batches behind `pending_halos` —
    /// the in-flight counter is decremented per batch once applied.
    pending_halo_batches: u64,
    /// Arrival instant of the oldest unapplied halo batch, so halo-only
    /// windows still close on the time window.
    halo_oldest: Option<Instant>,
    applied_seq: u64,
    /// Of `applied_seq`, how many were secondary route copies of
    /// cross-shard edge updates (see the staleness dedup in
    /// [`crate::QueryService`]).
    applied_secondary: u64,
    /// Monotone sequence of this shard's logged windows.
    window_seq: u64,
    /// This shard's write-ahead log (present iff the tier has
    /// [`ServeConfig::durability`]; each shard logs under its own
    /// subdirectory).
    wal: Option<WalWriter>,
    /// The shard-scoped durability configuration behind `wal`.
    durability: Option<DurabilityConfig>,
    flush_log: Option<FlushLog>,
    /// This shard's queue-depth counter (decremented as updates are
    /// absorbed; the router enforces backpressure against it).
    depth: Arc<AtomicUsize>,
    /// Tier-wide count of halo batches sent but not yet applied.
    halo_in_flight: Arc<AtomicU64>,
    /// Senders to every shard of the tier, indexed by [`PartitionId`].
    peers: Vec<Sender<ShardMsg>>,
}

impl ShardWorker {
    /// Flushes the pending window: applies the coalesced batch plus the
    /// received halos through the shard engine, publishes the shard's next
    /// epoch, and ships outgoing cross-shard deltas. A window holding only
    /// halos still runs the engine and publishes.
    fn flush(&mut self) -> crate::Result<u64> {
        if self.window.raw_len() == 0 && self.pending_halos.is_empty() {
            return Ok(self.publisher.epoch());
        }
        let (batch, raw, secondary, enqueues) = self.window.drain();
        let halos = std::mem::take(&mut self.pending_halos);
        let halo_batches = std::mem::take(&mut self.pending_halo_batches);
        self.halo_oldest = None;
        let ran_engine = !batch.is_empty() || !halos.is_empty();
        // Log before apply, including the halos absorbed this window: peer
        // shards log their *received* halos in their own frames, so replay
        // of a shard's log alone reproduces its store (outgoing deltas are
        // discarded on replay — the receivers already have them).
        self.window_seq += 1;
        if let Some(wal) = &mut self.wal {
            let frame = WalFrame {
                window_seq: self.window_seq,
                epoch: self.publisher.epoch() + 1,
                applied_seq: self.applied_seq + raw,
                applied_secondary: self.applied_secondary + secondary,
                topology_epoch: self.engine.topology_epoch() + u64::from(ran_engine),
                raw,
                batch: batch.clone(),
                halos: halos.clone(),
            };
            if let Err(e) = wal.append(&frame) {
                // The worker is about to exit; release the in-flight
                // accounting so peers' quiesce loops can observe the
                // failure instead of spinning.
                if halo_batches > 0 {
                    self.halo_in_flight
                        .fetch_sub(halo_batches, Ordering::AcqRel);
                }
                return Err(e);
            }
        }
        let mut outgoing = Vec::new();
        if ran_engine {
            match self.engine.process_window(&batch, &halos) {
                Ok((_stats, shipped)) => outgoing = shipped,
                Err(e) => {
                    self.metrics.record_engine_error();
                    // The worker is about to exit; release the in-flight
                    // accounting so peers' quiesce loops can observe the
                    // failure instead of spinning.
                    if halo_batches > 0 {
                        self.halo_in_flight
                            .fetch_sub(halo_batches, Ordering::AcqRel);
                    }
                    return Err(ServeError::Engine(e));
                }
            }
        }
        self.applied_seq += raw;
        self.applied_secondary += secondary;
        let topology_epoch = self.engine.topology_epoch();
        let dirty: Option<&[VertexId]> = if ran_engine {
            Some(self.engine.dirty_rows())
        } else {
            Some(&[])
        };
        // Index before store, mirroring the single-engine scheduler: index
        // skew can only cost recall, never scores.
        if let Some(index) = &mut self.index {
            index.publish(self.engine.store(), dirty);
        }
        let epoch = self.publisher.publish_stamped(
            self.engine.store(),
            self.applied_seq,
            self.applied_secondary,
            topology_epoch,
            dirty,
        );
        let published_at = Instant::now();
        for enqueued in enqueues {
            self.metrics
                .record_visibility_lag(published_at.saturating_duration_since(enqueued));
        }
        self.metrics.record_flush(raw, ran_engine);
        if let Some(log) = &self.flush_log {
            log.push(FlushRecord {
                window_seq: self.window_seq,
                batch,
                halos,
                raw,
                epoch,
                applied_seq: self.applied_seq,
                topology_epoch,
            });
        }
        // Ship before releasing the incoming accounting: the in-flight
        // counter must never read 0 while this window's follow-on messages
        // are still unsent, or a concurrent quiesce would end early.
        self.ship(outgoing);
        if halo_batches > 0 {
            self.halo_in_flight
                .fetch_sub(halo_batches, Ordering::AcqRel);
        }
        if let Some(d) = &self.durability {
            if d.fail_points.fire(FP_AFTER_PUBLISH) {
                return Err(ServeError::Wal(format!(
                    "fail point {FP_AFTER_PUBLISH} fired after epoch {epoch} was published"
                )));
            }
            if d.checkpoint_every > 0 && self.window_seq.is_multiple_of(d.checkpoint_every) {
                write_checkpoint(
                    &d.dir,
                    &Checkpoint {
                        window_seq: self.window_seq,
                        epoch,
                        applied_seq: self.applied_seq,
                        applied_secondary: self.applied_secondary,
                        topology_epoch,
                        graph: self.engine.graph().clone(),
                        store: self.engine.store().clone(),
                    },
                    d.fsync,
                    &d.fail_points,
                )?;
            }
        }
        Ok(epoch)
    }

    /// Delivers one window's outgoing deltas, one [`ShardMsg::Halos`] batch
    /// per destination shard.
    fn ship(&self, outgoing: Vec<(PartitionId, DeltaMessage)>) {
        let mut per_part: Vec<Vec<DeltaMessage>> = vec![Vec::new(); self.peers.len()];
        for (part, message) in outgoing {
            per_part[part.index()].push(message);
        }
        for (part, messages) in per_part.into_iter().enumerate() {
            if messages.is_empty() {
                continue;
            }
            self.halo_in_flight.fetch_add(1, Ordering::AcqRel);
            if self.peers[part].send(ShardMsg::Halos(messages)).is_err() {
                // The peer already exited (engine error / shutdown): the
                // batch is lost, undo its accounting.
                self.halo_in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Drains the shard queue until every sender hangs up or a stop message
    /// arrives, flushing on the size and time windows.
    fn run(mut self, rx: Receiver<ShardMsg>) -> Result<ShardEngine, ServeError> {
        loop {
            let window_deadline = self.window.deadline(self.config.max_delay);
            let halo_deadline = self.halo_oldest.map(|t| t + self.config.max_delay);
            let deadline = match (window_deadline, halo_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let wake = match deadline {
                Some(deadline) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(budget) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            self.flush()?;
                            return Ok(self.engine);
                        }
                    }
                }
                None => match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => return Ok(self.engine),
                },
            };
            match wake {
                Some(ShardMsg::Update(queued)) => {
                    self.depth.fetch_sub(1, Ordering::AcqRel);
                    self.window.push(queued, &self.metrics);
                    if self.window.raw_len() >= self.config.max_batch as u64 {
                        self.flush()?;
                    }
                }
                Some(ShardMsg::Halos(messages)) => {
                    self.halo_oldest.get_or_insert_with(Instant::now);
                    self.pending_halos.extend(messages);
                    self.pending_halo_batches += 1;
                    // Heavy cross-shard traffic closes the size window too,
                    // so the halo mailbox cannot buffer unboundedly.
                    if self.pending_halos.len() >= self.config.max_batch {
                        self.flush()?;
                    }
                }
                Some(ShardMsg::Flush(ack)) => {
                    let epoch = self.flush()?;
                    // The caller may have given up waiting; ignore that.
                    let _ = ack.send(epoch);
                }
                Some(ShardMsg::Stop) => {
                    self.flush()?;
                    return Ok(self.engine);
                }
                // Time window expired.
                None => {
                    self.flush()?;
                }
            }
        }
    }
}

/// The per-shard engines recovered by [`ShardedServeHandle::shutdown`].
#[derive(Debug)]
pub struct ShardedEngines {
    engines: Vec<ShardEngine>,
    partitioning: Arc<Partitioning>,
}

impl ShardedEngines {
    /// The shard engines, indexed by [`PartitionId`].
    pub fn engines(&self) -> &[ShardEngine] {
        &self.engines
    }

    /// Consumes the handle, yielding the shard engines.
    pub fn into_engines(self) -> Vec<ShardEngine> {
        self.engines
    }

    /// The partitioning the tier served under.
    pub fn partitioning(&self) -> &Arc<Partitioning> {
        &self.partitioning
    }

    /// Assembles the authoritative global store by gathering every shard's
    /// owned rows.
    pub fn gather_store(&self) -> EmbeddingStore {
        let mut out = self.engines[0].store().clone();
        for engine in &self.engines {
            engine.gather_into(&mut out);
        }
        out
    }
}

/// Handle onto a running sharded serving session (see [`spawn_sharded`]).
///
/// The sharded counterpart of [`crate::ServeHandle`]; both implement
/// [`crate::ServeFrontend`], so load generators and consistency suites run
/// unchanged against either topology.
#[derive(Debug)]
pub struct ShardedServeHandle {
    txs: Vec<Sender<ShardMsg>>,
    depths: Vec<Arc<AtomicUsize>>,
    alive: Vec<Arc<AtomicBool>>,
    submitted: Vec<Arc<AtomicU64>>,
    /// Per-shard secondary (duplicate-delivery) submission counters,
    /// paired with `submitted` for deduplicated staleness stamps.
    secondary_submitted: Vec<Arc<AtomicU64>>,
    total_submitted: Arc<AtomicU64>,
    halo_in_flight: Arc<AtomicU64>,
    metrics: Arc<ServeMetrics>,
    readers: Vec<SnapshotReader>,
    /// Per-shard IVF index readers (present iff [`ServeConfig::index`]).
    index_readers: Option<Vec<IndexReader>>,
    /// Per-shard index maintenance counters (empty when indexing is off).
    index_stats: Vec<Arc<SharedIndexStats>>,
    partitioning: Arc<Partitioning>,
    flush_logs: Vec<FlushLog>,
    halo_replicas: usize,
    config: ServeConfig,
    /// Per-shard recovery reports (one per shard iff the tier was spawned
    /// with [`ServeConfig::durability`]; empty otherwise).
    recovery: Vec<RecoveryReport>,
    /// Per-shard terminal-failure slots, filled by a worker before it
    /// exits abnormally.
    failures: Vec<Arc<Mutex<Option<ServeError>>>>,
    joins: Vec<JoinHandle<Result<ShardEngine, ServeError>>>,
}

impl ShardedServeHandle {
    /// A new producer handle that hash-routes updates to their owners.
    pub fn client(&self) -> ShardRouter {
        ShardRouter::new(
            self.txs.clone(),
            self.depths.clone(),
            self.alive.clone(),
            self.submitted.clone(),
            self.secondary_submitted.clone(),
            Arc::clone(&self.total_submitted),
            Arc::clone(&self.partitioning),
            Arc::clone(&self.metrics),
            self.config.policy,
            self.config.queue_capacity,
        )
    }

    /// A new query handle reading every shard's epoch sequence (each reader
    /// thread should own one).
    pub fn query_service(&self) -> crate::QueryService {
        crate::QueryService::new_sharded(
            self.readers.clone(),
            self.index_readers.clone(),
            self.submitted.clone(),
            self.secondary_submitted.clone(),
            Arc::clone(&self.partitioning),
            Arc::clone(&self.metrics),
        )
    }

    /// The shared serving metrics (aggregated across shards).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Index maintenance counters summed across shards, or `None` when the
    /// session was spawned with [`crate::ServeConfigBuilder::no_index`].
    pub fn index_stats(&self) -> Option<IndexStats> {
        if self.index_stats.is_empty() {
            return None;
        }
        Some(
            self.index_stats
                .iter()
                .map(|s| s.snapshot())
                .fold(IndexStats::default(), IndexStats::merged),
        )
    }

    /// Number of shards behind this session.
    pub fn num_shards(&self) -> usize {
        self.txs.len()
    }

    /// The partitioning updates are routed by.
    pub fn partitioning(&self) -> &Arc<Partitioning> {
        &self.partitioning
    }

    /// Halo replicas of the bootstrap partitioning — vertices visible from
    /// a shard that does not own them (the cross-shard coupling the tier
    /// pays delta messages for).
    pub fn halo_replicas(&self) -> usize {
        self.halo_replicas
    }

    /// One flush round: forces every shard's window closed and returns the
    /// minimum per-shard epoch afterwards. Returns `None` once any shard
    /// has stopped. Cross-shard deltas produced by these flushes may still
    /// be in flight afterwards — use [`ShardedServeHandle::quiesce`] to
    /// drain them.
    pub fn flush(&self) -> Option<u64> {
        let mut acks = Vec::with_capacity(self.txs.len());
        for tx in &self.txs {
            let (ack_tx, ack_rx) = mpsc::channel();
            tx.send(ShardMsg::Flush(ack_tx)).ok()?;
            acks.push(ack_rx);
        }
        let mut min_epoch = u64::MAX;
        for ack in acks {
            min_epoch = min_epoch.min(ack.recv().ok()?);
        }
        Some(min_epoch)
    }

    /// Flushes repeatedly until no cross-shard delta is in flight and every
    /// shard queue is empty, then returns the minimum per-shard epoch.
    /// Converges in at most `num_layers` rounds once producers stop
    /// (messages only move to strictly higher hops).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardFailed`] naming the failed shard once any shard
    /// has stopped abnormally (engine failure, WAL failure, or panic).
    pub fn quiesce(&self) -> crate::Result<u64> {
        loop {
            let Some(epoch) = self.flush() else {
                return Err(self.tier_failure());
            };
            if self.halo_in_flight.load(Ordering::Acquire) == 0
                && self.depths.iter().all(|d| d.load(Ordering::Acquire) == 0)
            {
                return Ok(epoch);
            }
        }
    }

    /// Per-shard recovery reports, indexed by [`PartitionId`] (one per
    /// shard iff the tier was spawned with [`ServeConfig::durability`]).
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.recovery.clone()
    }

    /// The typed failure of the first shard that stopped abnormally.
    fn tier_failure(&self) -> ServeError {
        for (p, slot) in self.failures.iter().enumerate() {
            let failed = slot.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(error) = failed {
                return ServeError::ShardFailed {
                    shard: p as u32,
                    error: Box::new(error),
                };
            }
        }
        ServeError::SchedulerPanicked
    }

    /// The per-shard flush logs, indexed by [`PartitionId`] (empty unless
    /// [`ServeConfig::record_batches`] is set); cloned so they stay
    /// readable after [`ShardedServeHandle::shutdown`].
    pub fn flush_logs(&self) -> Vec<FlushLog> {
        self.flush_logs.clone()
    }

    /// Quiesces the tier, stops every shard worker and returns the shard
    /// engines (with every accepted update and cross-shard delta applied).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardFailed`] naming the first shard that stopped
    /// abnormally and carrying its typed failure (engine error, WAL error,
    /// or [`ServeError::SchedulerPanicked`] for a caught panic).
    pub fn shutdown(self) -> Result<ShardedEngines, ServeError> {
        // Drain in-flight halos first so the recovered engines are at
        // quiescence; a dead shard aborts the drain and surfaces its error
        // from the join below.
        let _ = self.quiesce();
        for tx in &self.txs {
            let _ = tx.send(ShardMsg::Stop);
        }
        let mut engines = Vec::with_capacity(self.joins.len());
        for (p, join) in self.joins.into_iter().enumerate() {
            let shard = p as u32;
            match join.join() {
                Ok(Ok(engine)) => engines.push(engine),
                Ok(Err(e)) => {
                    return Err(ServeError::ShardFailed {
                        shard,
                        error: Box::new(e),
                    })
                }
                Err(_) => {
                    return Err(ServeError::ShardFailed {
                        shard,
                        error: Box::new(ServeError::SchedulerPanicked),
                    })
                }
            }
        }
        Ok(ShardedEngines {
            engines,
            partitioning: self.partitioning,
        })
    }
}

/// Spawns a sharded serving session: hash-partitions `graph` into `shards`
/// parts, builds one halo-restricted [`ShardEngine`] per part from the
/// bootstrapped `store`, and runs each behind its own scheduler thread and
/// snapshot publisher. Every shard's bootstrap store is published as its
/// epoch 0, so queries work immediately.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] if `shards` is zero or exceeds the
/// vertex count, and [`ServeError::Engine`] if graph/model/store shapes do
/// not fit together.
pub fn spawn_sharded(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    engine_config: RippleConfig,
    config: ServeConfig,
    shards: usize,
) -> crate::Result<ShardedServeHandle> {
    if shards == 0 {
        return Err(ServeError::InvalidConfig(
            "a sharded session needs at least one shard".to_string(),
        ));
    }
    let partitioning = Arc::new(
        HashPartitioner::new()
            .partition(graph, shards)
            .map_err(|e| ServeError::InvalidConfig(format!("partitioning failed: {e}")))?,
    );
    let halo_replicas = HaloInfo::compute(graph, &partitioning).total_halo_replicas();

    let metrics = Arc::new(ServeMetrics::new());
    let total_submitted = Arc::new(AtomicU64::new(0));
    let halo_in_flight = Arc::new(AtomicU64::new(0));
    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel();
        txs.push(tx);
        rxs.push(rx);
    }

    let mut depths = Vec::with_capacity(shards);
    let mut alive = Vec::with_capacity(shards);
    let mut submitted = Vec::with_capacity(shards);
    let mut secondary_submitted = Vec::with_capacity(shards);
    let mut readers = Vec::with_capacity(shards);
    let mut index_readers = config.index.map(|_| Vec::with_capacity(shards));
    let mut index_stats = Vec::new();
    let mut flush_logs = Vec::new();
    let mut recovery = Vec::new();
    let mut failures = Vec::with_capacity(shards);
    let mut joins = Vec::with_capacity(shards);

    for (p, rx) in rxs.into_iter().enumerate() {
        let part = PartitionId(p as u32);
        let mut engine = ShardEngine::new(
            graph,
            model.clone(),
            store.clone(),
            engine_config,
            Arc::clone(&partitioning),
            part,
        )?;
        // Per-shard durability: each shard logs and checkpoints its own
        // window sequence under `dir/shard-{p}/` and recovers it here,
        // exactly like the single-engine scheduler. Replay feeds each
        // frame's batch *and* logged received halos back through the
        // engine and discards the regenerated outgoing deltas — the peers
        // hold their own logs.
        let started = Instant::now();
        let durability = config.durability.as_ref().map(|d| d.for_shard(p));
        let mut window_seq = 0;
        let mut applied_seq = 0;
        let mut applied_secondary = 0;
        let mut epoch = 0;
        let wal = match &durability {
            Some(d) => {
                let recovered = recover(&d.dir)?;
                let mut report = RecoveryReport {
                    from_checkpoint: false,
                    checkpoint_seq: 0,
                    replayed_windows: 0,
                    resumed_window_seq: recovered.resumed_window_seq(),
                    resumed_epoch: 0,
                    dropped_tail_bytes: recovered.dropped_tail_bytes,
                    recovery_time: Duration::ZERO,
                };
                if let Some(ckpt) = recovered.checkpoint {
                    report.from_checkpoint = true;
                    report.checkpoint_seq = ckpt.window_seq;
                    window_seq = ckpt.window_seq;
                    applied_seq = ckpt.applied_seq;
                    applied_secondary = ckpt.applied_secondary;
                    epoch = ckpt.epoch;
                    engine
                        .restore_state(ckpt.graph, ckpt.store, ckpt.topology_epoch)
                        .map_err(ServeError::Engine)?;
                }
                for frame in &recovered.frames {
                    if !frame.batch.is_empty() || !frame.halos.is_empty() {
                        engine
                            .process_window(&frame.batch, &frame.halos)
                            .map_err(ServeError::Engine)?;
                    }
                    report.replayed_windows += 1;
                    window_seq = frame.window_seq;
                    applied_seq = frame.applied_seq;
                    applied_secondary = frame.applied_secondary;
                    epoch = frame.epoch;
                }
                report.resumed_epoch = epoch;
                report.recovery_time = started.elapsed();
                recovery.push(report);
                Some(WalWriter::open(
                    &d.dir,
                    window_seq + 1,
                    d.segment_bytes,
                    d.fsync,
                    d.fail_points.clone(),
                )?)
            }
            None => None,
        };
        let (publisher, reader) = VersionedStore::bootstrap_at(
            engine.store(),
            epoch,
            applied_seq,
            applied_secondary,
            engine.topology_epoch(),
        );
        readers.push(reader);
        // Each shard indexes only the rows it owns: the merged approximate
        // read scores every candidate from its owner's snapshot, exactly
        // like the merged exact scan.
        let index = config.index.map(|params| {
            let owned: Vec<bool> = partitioning
                .assignment()
                .iter()
                .map(|owner| *owner == part)
                .collect();
            let (maintainer, index_reader) =
                IndexMaintainer::bootstrap(engine.store(), Some(owned), params);
            if let Some(list) = &mut index_readers {
                list.push(index_reader);
            }
            index_stats.push(maintainer.shared_stats());
            maintainer
        });
        let flush_log = config.record_batches.then(FlushLog::new);
        if let Some(log) = &flush_log {
            flush_logs.push(log.clone());
        }
        let depth = Arc::new(AtomicUsize::new(0));
        depths.push(Arc::clone(&depth));
        let alive_flag = Arc::new(AtomicBool::new(true));
        alive.push(Arc::clone(&alive_flag));
        submitted.push(Arc::new(AtomicU64::new(0)));
        secondary_submitted.push(Arc::new(AtomicU64::new(0)));
        let failure: Arc<Mutex<Option<ServeError>>> = Arc::new(Mutex::new(None));
        failures.push(Arc::clone(&failure));
        let worker = ShardWorker {
            engine,
            publisher,
            index,
            config: config.clone(),
            metrics: Arc::clone(&metrics),
            window: Coalescer::default(),
            pending_halos: Vec::new(),
            pending_halo_batches: 0,
            halo_oldest: None,
            applied_seq,
            applied_secondary,
            window_seq,
            wal,
            durability,
            flush_log,
            depth,
            halo_in_flight: Arc::clone(&halo_in_flight),
            peers: txs.clone(),
        };
        let join = std::thread::Builder::new()
            .name(format!("ripple-serve-shard-{p}"))
            .spawn(move || {
                // Clear the liveness flag on any exit — clean, engine error
                // or panic — so blocked routers observe the dead shard.
                struct AliveGuard(Arc<AtomicBool>);
                impl Drop for AliveGuard {
                    fn drop(&mut self) {
                        self.0.store(false, Ordering::Release);
                    }
                }
                let _guard = AliveGuard(alive_flag);
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run(rx)))
                        .unwrap_or(Err(ServeError::SchedulerPanicked));
                if let Err(e) = &result {
                    *failure.lock().unwrap_or_else(|e| e.into_inner()) = Some(e.clone());
                }
                result
            })
            .expect("spawning a shard worker thread");
        joins.push(join);
    }

    Ok(ShardedServeHandle {
        txs,
        depths,
        alive,
        submitted,
        secondary_submitted,
        total_submitted,
        halo_in_flight,
        metrics,
        readers,
        index_readers,
        index_stats,
        partitioning,
        flush_logs,
        halo_replicas,
        config,
        recovery,
        failures,
        joins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeFrontend, Submission};
    use ripple_core::RippleEngine;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;
    use ripple_graph::{GraphUpdate, UpdateBatch};

    fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
        let full = DatasetSpec::custom(150, 5.0, 6, 4).generate(seed).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let updates = plan
            .batches(1)
            .into_iter()
            .flat_map(UpdateBatch::into_updates)
            .collect();
        (plan.snapshot, model, store, updates)
    }

    #[test]
    fn sharded_session_matches_the_serial_engine_at_quiescence() {
        let (graph, model, store, updates) = bootstrap(21);
        let config = ServeConfig::builder().max_batch(8).build().unwrap();
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 2).unwrap();
        assert_eq!(handle.num_shards(), 2);
        let client = handle.client();
        let (accepted, last) = client.submit_all(updates.clone());
        assert_eq!(accepted, updates.len());
        assert!(matches!(last, Submission::Enqueued { .. }));
        let epoch = handle.quiesce().expect("tier alive");
        assert!(epoch >= 1);
        let metrics = handle.metrics();
        assert_eq!(
            metrics.applied(),
            metrics.enqueued(),
            "quiesce drains every routed update"
        );
        let engines = handle.shutdown().unwrap();
        let gathered = engines.gather_store();

        let mut serial = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
        for update in updates {
            serial
                .process_batch(&UpdateBatch::from_updates(vec![update]))
                .unwrap();
        }
        let diff = gathered.max_diff_all_layers(serial.store()).unwrap();
        assert!(
            diff < 2e-3,
            "sharded tier drifted from serial replay: {diff}"
        );
    }

    #[test]
    fn sharded_queries_carry_shard_and_epoch_vector_stamps() {
        let (graph, model, store, updates) = bootstrap(23);
        let config = ServeConfig::builder()
            .max_batch(4)
            .record_batches(true)
            .build()
            .unwrap();
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 4).unwrap();
        assert_eq!(handle.flush_logs().len(), 4, "one flush log per shard");
        let client = handle.client();
        let (accepted, _) = client.submit_all(updates.into_iter().take(20));
        assert_eq!(accepted, 20);
        handle.quiesce().unwrap();

        let mut queries = handle.query_service();
        let owner = handle.partitioning().part_of(VertexId(0));
        let e = queries.read_embedding(VertexId(0)).unwrap();
        assert_eq!(e.shard, Some(owner), "point reads name the owning shard");
        assert!(e.epochs.is_none());
        assert_eq!(queries.epoch_vector().len(), 4);
        let top = queries
            .top_k(&crate::TopKRequest::new(vec![1.0, 0.0, 0.0, 0.0], 3))
            .unwrap();
        assert_eq!(top.shard, None);
        assert_eq!(top.epochs.as_ref().map(Vec::len), Some(4));
        assert_eq!(
            top.epoch,
            top.epochs.as_ref().unwrap().iter().copied().min().unwrap()
        );

        let logs = handle.flush_logs();
        let applied = handle.metrics().applied();
        let engines = handle.shutdown().unwrap();
        assert_eq!(engines.engines().len(), 4);
        let recorded: u64 = logs
            .iter()
            .flat_map(|log| log.snapshot())
            .map(|record| record.raw)
            .sum();
        assert_eq!(recorded, applied, "flush logs cover every routed update");
    }

    #[test]
    fn sharded_full_probe_approx_matches_the_exact_scan() {
        let (graph, model, store, updates) = bootstrap(29);
        let config = ServeConfig::builder().max_batch(8).build().unwrap();
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 3).unwrap();
        let client = handle.client();
        client.submit_all(updates.into_iter().take(30));
        handle.quiesce().unwrap();

        let mut queries = handle.query_service();
        let query = vec![0.7, -0.4, 0.2, 0.9];
        let exact = queries
            .top_k(&crate::TopKRequest::new(query.clone(), 5))
            .unwrap();
        // Probing every cluster of every shard visits every owned row, so
        // the merged approximate read must equal the merged exact scan.
        let approx = queries
            .top_k(&crate::TopKRequest::new(query, 5).approx(usize::MAX))
            .unwrap();
        assert_eq!(exact.value, approx.value);
        let stats = handle.index_stats().expect("indexing defaults on");
        assert_eq!(stats.builds, 3, "one bootstrap build per shard");
        assert_eq!(stats.rebuilds, 0, "dirty repair never rebuilds");
        assert!(stats.repairs > 0, "every flush repairs each shard index");
    }

    #[test]
    fn zero_shards_is_rejected() {
        let (graph, model, store, _) = bootstrap(25);
        let result = spawn_sharded(
            &graph,
            &model,
            &store,
            RippleConfig::default(),
            ServeConfig::default(),
            0,
        );
        assert!(
            matches!(result, Err(ServeError::InvalidConfig(_))),
            "zero shards must be rejected"
        );
    }

    #[test]
    fn frontend_trait_is_object_safe_enough_for_generic_drivers() {
        fn drive<F: ServeFrontend>(frontend: &F) -> (u64, usize) {
            let client = frontend.client();
            client.submit(GraphUpdate::add_edge(VertexId(1), VertexId(2)));
            let epoch = frontend.quiesce().unwrap();
            (epoch, frontend.num_shards())
        }
        let (graph, model, store, _) = bootstrap(27);
        let single = crate::spawn(
            RippleEngine::new(
                graph.clone(),
                model.clone(),
                store.clone(),
                RippleConfig::default(),
            )
            .unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        let (epoch, shards) = drive(&single);
        assert!(epoch >= 1);
        assert_eq!(shards, 1);
        single.shutdown().unwrap();

        let sharded = spawn_sharded(
            &graph,
            &model,
            &store,
            RippleConfig::default(),
            ServeConfig::default(),
            2,
        )
        .unwrap();
        let (epoch, shards) = drive(&sharded);
        assert!(epoch >= 1);
        assert_eq!(shards, 2);
        sharded.shutdown().unwrap();
    }
}
