//! Online serving for the Ripple incremental engine.
//!
//! The engines in `ripple-core` keep embeddings fresh under streamed graph
//! updates, but they own their store exclusively — nothing can *query* while
//! a batch propagates. This crate adds the read/update separation a serving
//! deployment needs:
//!
//! * [`VersionedStore`] — epoch-versioned [`ripple_gnn::EmbeddingStore`]
//!   snapshots behind an `Arc` swap. Readers hold a cheap cached
//!   [`SnapshotReader`] handle whose hot path is **one atomic load**; the
//!   publisher double-buffers so steady-state epoch publication reuses the
//!   retired snapshot's buffers instead of allocating a full store copy.
//! * [`UpdateScheduler`] internals behind [`spawn`] — an MPSC update queue
//!   with size- and time-window coalescing, same-edge churn dedup and
//!   bounded-queue backpressure ([`BackpressurePolicy::Block`] or
//!   [`BackpressurePolicy::Shed`]), driving any
//!   [`ripple_core::StreamingEngine`] on a dedicated scheduler thread and
//!   publishing a new epoch after each flushed batch.
//! * [`QueryService`] — point embedding lookups, predicted labels and
//!   batched top-k by embedding dot product, each stamped with the epoch and
//!   staleness (updates enqueued but not yet visible) it was served at.
//!   Top-k goes through a validated [`TopKRequest`]: [`ReadMode::Exact`]
//!   scans every row, [`ReadMode::Approx`] probes the session's IVF index.
//! * An **epoch-repaired IVF index** ([`index`]) — k-means coarse centroids
//!   over final-layer embeddings with per-cluster postings lists, published
//!   behind the same `Arc`-swap discipline as the store. Each flush repairs
//!   only the rows the engine dirtied (plus lazy split/merge of imbalanced
//!   clusters), so approximate top-k stays sublinear while following every
//!   epoch; [`IndexStats`] counts repairs vs rebuilds.
//! * [`ServeMetrics`] and a closed-loop [`loadgen`] — read-latency
//!   percentiles, update-visibility lag and epochs/sec, deterministic via
//!   the workspace's seeded `rand` shim.
//! * A **sharded serving tier** behind the same API — [`spawn_sharded`]
//!   hash-partitions the graph into [`ripple_core::ShardEngine`]s, each on
//!   its own scheduler thread with its own epoch sequence; a
//!   [`ShardRouter`] hash-routes updates and the shards exchange halo
//!   delta messages like the distributed engine's halo stubs. The
//!   [`ServeFrontend`] trait abstracts over both topologies, so load
//!   generators and consistency suites run unchanged against either.
//!
//! # Example
//!
//! ```
//! use ripple_core::{RippleConfig, RippleEngine};
//! use ripple_gnn::{layer_wise::full_inference, Workload};
//! use ripple_graph::synth::DatasetSpec;
//! use ripple_graph::{GraphUpdate, VertexId};
//! use ripple_serve::{spawn, ServeConfig};
//!
//! let graph = DatasetSpec::custom(100, 4.0, 8, 4).generate(1).unwrap();
//! let model = Workload::GcS.build_model(8, 16, 4, 2, 7).unwrap();
//! let store = full_inference(&graph, &model).unwrap();
//! let engine = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
//!
//! let handle = spawn(engine, ServeConfig::default()).unwrap();
//! let client = handle.client();
//! let mut queries = handle.query_service();
//!
//! client.submit(GraphUpdate::add_edge(VertexId(3), VertexId(10)));
//! handle.flush(); // force the window closed (normally size/time-triggered)
//!
//! let label = queries.read_label(VertexId(10)).unwrap();
//! assert!(label.epoch >= 1);
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod durability;
pub mod frontend;
pub mod histogram;
pub mod index;
pub mod loadgen;
pub mod metrics;
pub mod query;
pub mod router;
pub mod scheduler;
pub mod shard;
pub mod soak;
pub mod versioned;

pub use admission::{AdmissionController, AdmissionParams, StagedWindow, WindowState};
pub use durability::{
    DurabilityConfig, FailPoints, FsyncPolicy, RecoveryReport, FP_AFTER_PUBLISH, FP_CKPT_MID,
    FP_WAL_AFTER_APPEND, FP_WAL_BEFORE_APPEND, FP_WAL_TORN_APPEND,
};
pub use frontend::{ServeClient, ServeFrontend};
pub use histogram::LatencyHistogram;
pub use index::{IndexParams, IndexReader, IndexStats, TopKIndex};
pub use loadgen::{
    run_admission_bench, run_loadgen, run_nprobe_sweep, run_topk_bench, AdmissionBenchPoint,
    AdmissionBenchReport, LoadgenConfig, LoadgenReport, NprobeSweepPoint, NprobeSweepReport,
    TopKBenchPoint, TopKBenchReport, DEFAULT_NPROBE,
};
pub use metrics::{MetricsReport, ServeMetrics};
pub use query::{QueryService, ReadMode, Stamped, TopKRequest};
pub use router::ShardRouter;
pub use scheduler::{
    spawn, BackpressurePolicy, FlushLog, FlushRecord, ServeConfig, ServeConfigBuilder, ServeError,
    ServeHandle, Submission, UpdateClient, UpdateScheduler,
};
pub use shard::{spawn_sharded, ShardedEngines, ShardedServeHandle};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use versioned::{
    BufferStats, EpochSnapshot, SnapshotPublisher, SnapshotReader, VersionedStore,
};

/// Re-export of the partition id shards and query stamps are keyed by.
pub use ripple_graph::PartitionId;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
