//! Closed-loop load generator for the serving subsystem.
//!
//! One writer thread streams a pre-generated, always-valid update sequence
//! through a [`crate::ServeClient`] while `N` reader threads hammer
//! [`QueryService`] handles with a configurable read mix (point embeddings,
//! predicted labels, top-k similarity). Everything operates closed-loop: the
//! writer is paced by queue backpressure, readers issue the next query as
//! soon as the previous one returns.
//!
//! The generator drives any [`ServeFrontend`]: a single engine behind one
//! scheduler, or — with [`LoadgenConfig::shards`] > 1 — a hash-partitioned
//! tier of shard engines. Epoch monotonicity is checked **per shard** in the
//! sharded case (stamps carry the owning shard; whole-graph reads carry the
//! min across the epoch vector, tracked in its own slot).
//!
//! The op *sequence* is deterministic (seeded via the workspace's
//! deterministic `rand` shim); wall-clock timings of course are not. The
//! report carries the serving-side headline numbers: p50/p95/p99 read
//! latency, update-visibility lag (enqueue → published epoch), epochs/sec —
//! and the safety counters the acceptance tests key on (epoch monotonicity
//! violations must be zero; every response is stamped).
//!
//! Configuration comes from `RIPPLE_SCALE`, `RIPPLE_THREADS` and the
//! `RIPPLE_SERVE_*` environment knobs (see [`LoadgenConfig::from_env`]); the
//! `serve_loadgen` binary is the CLI front end and emits the
//! `BENCH_serve.json` artifact in CI.

use crate::frontend::ServeFrontend;
use crate::histogram::LatencyHistogram;
use crate::index::IndexStats;
use crate::metrics::MetricsReport;
use crate::query::{ReadMode, TopKRequest};
use crate::scheduler::{spawn, BackpressurePolicy, ServeConfig, Submission};
use crate::shard::spawn_sharded;
use crate::QueryService;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ripple_core::{ParallelRippleEngine, RippleConfig, RippleEngine, StreamingEngine};
use ripple_gnn::layer_wise::full_inference;
use ripple_gnn::Workload;
use ripple_graph::stream::{build_stream, StreamConfig};
use ripple_graph::synth::DatasetSpec;
use ripple_graph::{DynamicGraph, GraphUpdate, UpdateBatch, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one load-generator run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenConfig {
    /// Vertices of the synthetic power-law graph.
    pub vertices: usize,
    /// Average in-degree of the graph.
    pub avg_degree: f64,
    /// Feature width.
    pub feature_dim: usize,
    /// Output classes (= final embedding width).
    pub classes: usize,
    /// GNN layers.
    pub layers: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Raw updates the writer streams.
    pub updates: usize,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Worker threads of the driven engine (1 = serial [`RippleEngine`]).
    pub engine_threads: usize,
    /// Engine shards (1 = a single engine behind one scheduler; >1 drives a
    /// hash-partitioned tier via [`crate::spawn_sharded`]).
    pub shards: usize,
    /// `k` of the top-k read op.
    pub top_k: usize,
    /// How top-k reads execute: [`ReadMode::Exact`] scans, or
    /// [`ReadMode::Approx`] probes the session's IVF index.
    pub read_mode: ReadMode,
    /// Scheduler configuration.
    pub serve: ServeConfig,
    /// Seed for graph, stream and reader op sequences.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            vertices: 2_000,
            avg_degree: 6.0,
            feature_dim: 16,
            classes: 8,
            layers: 2,
            hidden_dim: 32,
            updates: 2_000,
            readers: 4,
            engine_threads: 1,
            shards: 1,
            top_k: 10,
            read_mode: ReadMode::Exact,
            serve: ServeConfig::default(),
            seed: 42,
        }
    }
}

impl LoadgenConfig {
    /// Builds a configuration from the environment:
    ///
    /// | knob | meaning | default |
    /// |------|---------|---------|
    /// | `RIPPLE_SCALE` | `tiny`/`small`/`medium` graph & stream sizes | `small` |
    /// | `RIPPLE_THREADS` | engine worker threads (`auto` = host cores) | 1 |
    /// | `RIPPLE_SERVE_READERS` | reader threads | 4 |
    /// | `RIPPLE_SERVE_SHARDS` | engine shards (>1 = sharded tier) | 1 |
    /// | `RIPPLE_SERVE_UPDATES` | raw updates streamed | scale-dependent |
    /// | `RIPPLE_SERVE_BATCH` | coalescing size window | 64 |
    /// | `RIPPLE_SERVE_DELAY_MS` | coalescing time window (ms) | 2 |
    /// | `RIPPLE_SERVE_QUEUE` | bounded queue capacity | 1024 |
    /// | `RIPPLE_SERVE_POLICY` | `block` or `shed` backpressure | `block` |
    /// | `RIPPLE_SERVE_READ_MODE` | `exact` or `approx` top-k reads | `exact` |
    /// | `RIPPLE_SERVE_NPROBE` | probed clusters of approx reads | 16 |
    /// | `RIPPLE_SERVE_ADMISSION` | `1`/`on` enables concurrent admission | off |
    /// | `RIPPLE_SERVE_INFLIGHT` | in-flight admission window depth | 4 |
    pub fn from_env() -> Self {
        let scale = std::env::var("RIPPLE_SCALE").unwrap_or_default();
        let (vertices, avg_degree, feature_dim, updates) = match scale.to_lowercase().as_str() {
            "tiny" => (300, 4.0, 8, 300),
            "medium" => (10_000, 8.0, 32, 10_000),
            _ => (2_000, 6.0, 16, 2_000),
        };
        let mut config = LoadgenConfig {
            vertices,
            avg_degree,
            feature_dim,
            updates,
            ..Default::default()
        };
        config.engine_threads = match std::env::var("RIPPLE_THREADS").as_deref() {
            Ok("auto") => ripple_core::WorkerPool::host_sized().threads(),
            Ok(value) => value.parse().ok().filter(|&t| t >= 1).unwrap_or(1),
            Err(_) => 1,
        };
        if let Some(readers) = env_usize("RIPPLE_SERVE_READERS") {
            config.readers = readers.max(1);
        }
        if let Some(shards) = env_usize("RIPPLE_SERVE_SHARDS") {
            config.shards = shards.max(1);
        }
        if let Some(updates) = env_usize("RIPPLE_SERVE_UPDATES") {
            config.updates = updates;
        }
        if let Some(batch) = env_usize("RIPPLE_SERVE_BATCH") {
            config.serve.max_batch = batch.max(1);
        }
        if let Some(delay) = env_usize("RIPPLE_SERVE_DELAY_MS") {
            config.serve.max_delay = Duration::from_millis(delay as u64);
        }
        if let Some(capacity) = env_usize("RIPPLE_SERVE_QUEUE") {
            config.serve.queue_capacity = capacity.max(1);
        }
        if let Ok(policy) = std::env::var("RIPPLE_SERVE_POLICY") {
            config.serve.policy = match policy.to_lowercase().as_str() {
                "shed" => BackpressurePolicy::Shed,
                _ => BackpressurePolicy::Block,
            };
        }
        config.serve.admission = crate::admission::AdmissionParams::from_env();
        if let Ok(mode) = std::env::var("RIPPLE_SERVE_READ_MODE") {
            config.read_mode = match mode.to_lowercase().as_str() {
                "approx" => ReadMode::Approx {
                    nprobe: DEFAULT_NPROBE,
                },
                _ => ReadMode::Exact,
            };
        }
        if let Some(nprobe) = env_usize("RIPPLE_SERVE_NPROBE") {
            config.read_mode = ReadMode::Approx {
                nprobe: nprobe.max(1),
            };
        }
        config
    }
}

/// Probed clusters when `RIPPLE_SERVE_READ_MODE=approx` does not name a
/// count (also the top-k benchmark's operating point).
pub const DEFAULT_NPROBE: usize = 16;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// What one reader thread measured. Latencies go into a bounded HDR-style
/// histogram (constant memory), so soak runs of any length keep the reader
/// threads' footprint flat.
struct ReaderStats {
    latencies: LatencyHistogram,
    reads_during_updates: u64,
    epoch_violations: u64,
    unstamped_responses: u64,
    max_staleness: u64,
}

/// Result of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Reader threads used.
    pub readers: usize,
    /// Engine worker threads used.
    pub engine_threads: usize,
    /// Engine shards serving the run (1 = unsharded).
    pub shards: usize,
    /// Raw updates the writer offered.
    pub updates_offered: usize,
    /// Wall-clock of the measured phase (first submit → drain).
    pub elapsed: Duration,
    /// Epochs published during the run.
    pub epochs: u64,
    /// Epochs per wall-clock second.
    pub epochs_per_sec: f64,
    /// Total reads served across all readers.
    pub reads: u64,
    /// Reads served **while the writer was still streaming** — the
    /// concurrent-read evidence the acceptance criteria ask for.
    pub reads_during_updates: u64,
    /// Reads per wall-clock second.
    pub reads_per_sec: f64,
    /// Median read latency.
    pub read_p50: Duration,
    /// 95th-percentile read latency.
    pub read_p95: Duration,
    /// 99th-percentile read latency.
    pub read_p99: Duration,
    /// Largest staleness stamp any reader observed.
    pub max_staleness: u64,
    /// Epoch-went-backwards observations (must be 0: epochs are monotonic
    /// per reader handle).
    pub epoch_violations: u64,
    /// Responses missing a stamp (must be 0: every in-range query is
    /// stamped).
    pub unstamped_responses: u64,
    /// Scheduler/engine counters at the end of the run.
    pub metrics: MetricsReport,
}

impl LoadgenReport {
    /// `true` when the run upheld the serving contract: no epoch ever moved
    /// backwards for a reader, every response was stamped, no engine error.
    pub fn contract_upheld(&self) -> bool {
        self.epoch_violations == 0
            && self.unstamped_responses == 0
            && self.metrics.engine_errors == 0
    }

    /// The `BENCH_serve.json` artifact (hand-rolled: the offline serde shim
    /// has no serialiser).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"serve_loadgen\",\n");
        out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
        out.push_str(&format!("  \"readers\": {},\n", self.readers));
        out.push_str(&format!("  \"engine_threads\": {},\n", self.engine_threads));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!(
            "  \"updates_offered\": {},\n",
            self.updates_offered
        ));
        out.push_str(&format!(
            "  \"elapsed_ms\": {:.3},\n",
            self.elapsed.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        out.push_str(&format!(
            "  \"epochs_per_sec\": {:.3},\n",
            self.epochs_per_sec
        ));
        out.push_str(&format!("  \"reads\": {},\n", self.reads));
        out.push_str(&format!(
            "  \"reads_during_updates\": {},\n",
            self.reads_during_updates
        ));
        out.push_str(&format!(
            "  \"reads_per_sec\": {:.3},\n",
            self.reads_per_sec
        ));
        out.push_str(&format!(
            "  \"read_p50_us\": {:.3},\n",
            self.read_p50.as_secs_f64() * 1e6
        ));
        out.push_str(&format!(
            "  \"read_p95_us\": {:.3},\n",
            self.read_p95.as_secs_f64() * 1e6
        ));
        out.push_str(&format!(
            "  \"read_p99_us\": {:.3},\n",
            self.read_p99.as_secs_f64() * 1e6
        ));
        out.push_str(&format!(
            "  \"mean_visibility_lag_us\": {:.3},\n",
            self.metrics.mean_visibility_lag.as_secs_f64() * 1e6
        ));
        out.push_str(&format!(
            "  \"max_visibility_lag_us\": {:.3},\n",
            self.metrics.max_visibility_lag.as_secs_f64() * 1e6
        ));
        out.push_str(&format!("  \"max_staleness\": {},\n", self.max_staleness));
        out.push_str(&format!("  \"enqueued\": {},\n", self.metrics.enqueued));
        out.push_str(&format!("  \"shed\": {},\n", self.metrics.shed));
        out.push_str(&format!("  \"coalesced\": {},\n", self.metrics.coalesced));
        out.push_str(&format!("  \"batches\": {},\n", self.metrics.batches));
        out.push_str(&format!(
            "  \"epoch_violations\": {},\n",
            self.epoch_violations
        ));
        out.push_str(&format!(
            "  \"unstamped_responses\": {},\n",
            self.unstamped_responses
        ));
        out.push_str(&format!(
            "  \"contract_upheld\": {}\n",
            self.contract_upheld()
        ));
        out.push('}');
        out.push('\n');
        out
    }
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<8} {:<10} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "shards", "readers", "epochs", "epochs/s", "reads/s", "p50 us", "p95 us", "p99 us"
        )?;
        writeln!(
            f,
            "{:<8} {:<10} {:>8} {:>10.2} {:>12.1} {:>12.2} {:>12.2} {:>12.2}",
            self.shards,
            self.readers,
            self.epochs,
            self.epochs_per_sec,
            self.reads_per_sec,
            self.read_p50.as_secs_f64() * 1e6,
            self.read_p95.as_secs_f64() * 1e6,
            self.read_p99.as_secs_f64() * 1e6
        )?;
        writeln!(
            f,
            "visibility lag: mean {:.3} ms, max {:.3} ms; max staleness {}; \
             reads during updates {}; coalesced {}; shed {}",
            self.metrics.mean_visibility_lag.as_secs_f64() * 1e3,
            self.metrics.max_visibility_lag.as_secs_f64() * 1e3,
            self.max_staleness,
            self.reads_during_updates,
            self.metrics.coalesced,
            self.metrics.shed
        )?;
        write!(
            f,
            "contract: epoch monotonic per reader per shard ({} violations), \
             stamped responses ({} missing), engine errors {}",
            self.epoch_violations, self.unstamped_responses, self.metrics.engine_errors
        )
    }
}

/// Runs one closed-loop serving session and reports what it measured.
///
/// # Panics
///
/// Panics on setup failures (dataset generation, bootstrap inference) and if
/// the scheduler fails to drain within a generous timeout — the load
/// generator treats those as fatal harness errors.
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    // ------------------------------------------------------------------
    // Setup: synthetic graph, valid update stream, bootstrapped engine.
    // ------------------------------------------------------------------
    let spec = DatasetSpec::custom(
        config.vertices,
        config.avg_degree,
        config.feature_dim,
        config.classes,
    );
    let full = spec.generate(config.seed).expect("dataset generation");
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: config.updates,
            seed: config.seed ^ 0x5eed,
            ..Default::default()
        },
    )
    .expect("update stream");
    let model = Workload::GcS
        .build_model(
            config.feature_dim,
            config.hidden_dim,
            config.classes,
            config.layers,
            config.seed ^ 0x77,
        )
        .expect("model construction");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap inference");
    let stream: Vec<GraphUpdate> = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    // ------------------------------------------------------------------
    // Serve: a single-engine session or a hash-partitioned shard tier —
    // the driving loop is written once against `ServeFrontend`.
    // ------------------------------------------------------------------
    let outcome = if config.shards > 1 {
        let handle = spawn_sharded(
            &plan.snapshot,
            &model,
            &store,
            RippleConfig::default(),
            config.serve.clone(),
            config.shards,
        )
        .expect("sharded serving tier");
        let outcome = drive(&handle, config, stream);
        handle.shutdown().expect("serving session failed");
        outcome
    } else {
        let engine: Box<dyn StreamingEngine + Send> = if config.engine_threads > 1 {
            Box::new(
                ParallelRippleEngine::new(
                    plan.snapshot,
                    model,
                    store,
                    RippleConfig::default(),
                    config.engine_threads,
                )
                .expect("parallel engine"),
            )
        } else {
            Box::new(
                RippleEngine::new(plan.snapshot, model, store, RippleConfig::default())
                    .expect("serial engine"),
            )
        };
        let handle = spawn(engine, config.serve.clone()).expect("serving session");
        let outcome = drive(&handle, config, stream);
        handle.shutdown().expect("serving session failed");
        outcome
    };

    let report = outcome.metrics;
    let secs = outcome.elapsed.as_secs_f64().max(1e-9);
    LoadgenReport {
        readers: config.readers.max(1),
        engine_threads: config.engine_threads,
        shards: config.shards.max(1),
        updates_offered: outcome.offered,
        elapsed: outcome.elapsed,
        epochs: report.epochs,
        epochs_per_sec: report.epochs as f64 / secs,
        reads: outcome.latencies.len(),
        reads_during_updates: outcome.reads_during_updates,
        reads_per_sec: outcome.latencies.len() as f64 / secs,
        read_p50: outcome.latencies.percentile(50.0),
        read_p95: outcome.latencies.percentile(95.0),
        read_p99: outcome.latencies.percentile(99.0),
        max_staleness: outcome.max_staleness,
        epoch_violations: outcome.epoch_violations,
        unstamped_responses: outcome.unstamped_responses,
        metrics: report,
    }
}

/// What [`drive`] measured, before it is shaped into a [`LoadgenReport`].
struct DriveOutcome {
    offered: usize,
    elapsed: Duration,
    latencies: LatencyHistogram,
    reads_during_updates: u64,
    epoch_violations: u64,
    unstamped_responses: u64,
    max_staleness: u64,
    metrics: MetricsReport,
}

/// The topology-agnostic measured phase: spawns the closed-loop readers,
/// streams the update sequence, quiesces, and joins the readers.
///
/// Epoch monotonicity is tracked per **slot**: one slot per shard (point
/// reads carry their owning shard) plus one for whole-graph reads, whose
/// stamp is the min across the epoch vector — monotonic in its own right,
/// but incomparable with any single shard's sequence.
fn drive<F: ServeFrontend>(
    frontend: &F,
    config: &LoadgenConfig,
    stream: Vec<GraphUpdate>,
) -> DriveOutcome {
    let metrics = frontend.metrics();
    let stop = Arc::new(AtomicBool::new(false));
    let writer_active = Arc::new(AtomicBool::new(true));
    let slots = frontend.num_shards() + 1;
    let started = Instant::now();

    let readers: Vec<_> = (0..config.readers.max(1))
        .map(|r| {
            let mut queries: QueryService = frontend.query_service();
            let stop = Arc::clone(&stop);
            let writer_active = Arc::clone(&writer_active);
            let seed = config.seed ^ (0x9e37_79b9_u64.wrapping_mul(r as u64 + 1));
            let num_vertices = config.vertices as u32;
            let classes = config.classes;
            let top_k = config.top_k;
            let read_mode = config.read_mode;
            std::thread::Builder::new()
                .name(format!("ripple-serve-reader-{r}"))
                .spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let mut stats = ReaderStats {
                        latencies: LatencyHistogram::new(),
                        reads_during_updates: 0,
                        epoch_violations: 0,
                        unstamped_responses: 0,
                        max_staleness: 0,
                    };
                    let mut last_epoch = vec![0u64; slots];
                    let mut query_vec = vec![0.0f32; classes];
                    while !stop.load(Ordering::Relaxed) {
                        let v = VertexId(rng.gen_range(0u32..num_vertices));
                        let start = Instant::now();
                        // Read mix: 10% top-k, 30% embedding, 60% label.
                        let stamp = match rng.gen_range(0u32..10) {
                            0 => {
                                for x in query_vec.iter_mut() {
                                    *x = rng.gen_range(-1.0f32..1.0);
                                }
                                let mut request = TopKRequest::new(query_vec.clone(), top_k);
                                request.mode = read_mode;
                                queries
                                    .top_k(&request)
                                    .ok()
                                    .map(|s| (s.epoch, s.staleness, s.shard))
                            }
                            1..=3 => queries
                                .read_embedding(v)
                                .ok()
                                .map(|s| (s.epoch, s.staleness, s.shard)),
                            _ => queries
                                .read_label(v)
                                .ok()
                                .map(|s| (s.epoch, s.staleness, s.shard)),
                        };
                        stats.latencies.record(start.elapsed());
                        match stamp {
                            Some((epoch, staleness, shard)) => {
                                let slot = shard.map_or(slots - 1, |p| p.index());
                                if epoch < last_epoch[slot] {
                                    stats.epoch_violations += 1;
                                }
                                last_epoch[slot] = epoch;
                                stats.max_staleness = stats.max_staleness.max(staleness);
                            }
                            // Every generated query is in range; a missing
                            // stamp would be a serving bug.
                            None => stats.unstamped_responses += 1,
                        }
                        if writer_active.load(Ordering::Relaxed) {
                            stats.reads_during_updates += 1;
                        }
                    }
                    stats
                })
                .expect("spawning reader thread")
        })
        .collect();

    // The writer: closed-loop submission paced by queue backpressure.
    let client = frontend.client();
    let mut offered = 0usize;
    for update in stream {
        offered += 1;
        if client.submit(update) == Submission::Closed {
            break;
        }
    }
    // Drain fully: close pending windows and (sharded) wait out in-flight
    // cross-shard deltas, then wait for every routed update to be visible.
    // A poisoned session surfaces through the engine-error counter below
    // and the caller's shutdown, so the drain tolerates a quiesce error.
    let _ = frontend.quiesce();
    let drain_deadline = Instant::now() + Duration::from_secs(120);
    while metrics.applied() < metrics.enqueued() {
        if metrics.engine_errors() > 0 {
            // The session is poisoned; shutdown below reports the error.
            break;
        }
        assert!(
            Instant::now() < drain_deadline,
            "scheduler failed to drain: applied {} of {}",
            metrics.applied(),
            metrics.enqueued()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    writer_active.store(false, Ordering::Relaxed);

    // On a single-core host the writer can drain before the reader threads
    // ever get scheduled; give them a bounded window to serve at least one
    // read so the report (and the contract assertions) are meaningful.
    let read_deadline = Instant::now() + Duration::from_secs(10);
    while metrics.reads() == 0 && Instant::now() < read_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }

    // The measured span closes where reading stops: reads served during the
    // grace window above must count against the time that produced them, or
    // reads/sec would be inflated by up to the window length.
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    let reader_stats: Vec<ReaderStats> = readers
        .into_iter()
        .map(|t| t.join().expect("reader thread panicked"))
        .collect();

    // ------------------------------------------------------------------
    // Aggregate: merge the per-reader histograms — O(buckets) per reader,
    // no sample vector to sort no matter how long the run was.
    // ------------------------------------------------------------------
    let mut latencies = LatencyHistogram::new();
    let mut reads_during_updates = 0;
    let mut epoch_violations = 0;
    let mut unstamped_responses = 0;
    let mut max_staleness = 0;
    for stats in &reader_stats {
        latencies.merge(&stats.latencies);
        reads_during_updates += stats.reads_during_updates;
        epoch_violations += stats.epoch_violations;
        unstamped_responses += stats.unstamped_responses;
        max_staleness = max_staleness.max(stats.max_staleness);
    }
    DriveOutcome {
        offered,
        elapsed,
        latencies,
        reads_during_updates,
        epoch_violations,
        unstamped_responses,
        max_staleness,
        metrics: metrics.report(),
    }
}

/// One measured size point of the exact-vs-approx top-k benchmark.
#[derive(Debug, Clone)]
pub struct TopKBenchPoint {
    /// Vertices of the synthetic graph this point served.
    pub vertices: usize,
    /// Coarse clusters of the IVF index at this size.
    pub clusters: usize,
    /// Clusters probed per approximate query.
    pub nprobe: usize,
    /// Queries measured per mode.
    pub queries: usize,
    /// Median exact-scan latency.
    pub exact_p50: Duration,
    /// 99th-percentile exact-scan latency.
    pub exact_p99: Duration,
    /// Median approximate (IVF) latency.
    pub approx_p50: Duration,
    /// 99th-percentile approximate (IVF) latency.
    pub approx_p99: Duration,
    /// `exact_p50 / approx_p50` — the headline sublinearity evidence.
    pub speedup_p50: f64,
    /// Mean recall@10 of the approximate reads against the exact oracle.
    pub recall_at_10: f64,
    /// Index maintenance counters after warm-up + measurement.
    pub index: IndexStats,
}

/// Result of [`run_topk_bench`]: one point per graph size.
#[derive(Debug, Clone)]
pub struct TopKBenchReport {
    /// `k` used throughout (recall is recall@k).
    pub k: usize,
    /// The measured size points, in input order.
    pub points: Vec<TopKBenchPoint>,
}

impl TopKBenchReport {
    /// The `BENCH_topk.json` artifact (hand-rolled: the offline serde shim
    /// has no serialiser).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"serve_topk_bench\",\n");
        out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
        out.push_str(&format!("  \"k\": {},\n", self.k));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"vertices\": {},\n", p.vertices));
            out.push_str(&format!("      \"clusters\": {},\n", p.clusters));
            out.push_str(&format!("      \"nprobe\": {},\n", p.nprobe));
            out.push_str(&format!("      \"queries\": {},\n", p.queries));
            out.push_str(&format!(
                "      \"exact_p50_us\": {:.3},\n",
                p.exact_p50.as_secs_f64() * 1e6
            ));
            out.push_str(&format!(
                "      \"exact_p99_us\": {:.3},\n",
                p.exact_p99.as_secs_f64() * 1e6
            ));
            out.push_str(&format!(
                "      \"approx_p50_us\": {:.3},\n",
                p.approx_p50.as_secs_f64() * 1e6
            ));
            out.push_str(&format!(
                "      \"approx_p99_us\": {:.3},\n",
                p.approx_p99.as_secs_f64() * 1e6
            ));
            out.push_str(&format!("      \"speedup_p50\": {:.3},\n", p.speedup_p50));
            out.push_str(&format!("      \"recall_at_10\": {:.4},\n", p.recall_at_10));
            out.push_str(&format!("      \"index_builds\": {},\n", p.index.builds));
            out.push_str(&format!(
                "      \"index_rebuilds\": {},\n",
                p.index.rebuilds
            ));
            out.push_str(&format!("      \"index_repairs\": {},\n", p.index.repairs));
            out.push_str(&format!(
                "      \"index_rows_repaired\": {},\n",
                p.index.rows_repaired
            ));
            out.push_str(&format!("      \"index_splits\": {},\n", p.index.splits));
            out.push_str(&format!("      \"index_merges\": {}\n", p.index.merges));
            out.push_str(if i + 1 == self.points.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl std::fmt::Display for TopKBenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>10} {:>9} {:>7} {:>13} {:>13} {:>9} {:>10} {:>9} {:>9}",
            "|V|",
            "clusters",
            "nprobe",
            "exact p50 us",
            "approx p50 us",
            "speedup",
            "recall@10",
            "repairs",
            "rebuilds"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>10} {:>9} {:>7} {:>13.2} {:>13.2} {:>8.1}x {:>10.4} {:>9} {:>9}",
                p.vertices,
                p.clusters,
                p.nprobe,
                p.exact_p50.as_secs_f64() * 1e6,
                p.approx_p50.as_secs_f64() * 1e6,
                p.speedup_p50,
                p.recall_at_10,
                p.index.repairs,
                p.index.rebuilds
            )?;
        }
        Ok(())
    }
}

/// Benchmarks exact-scan vs approximate (IVF) top-k on single-engine
/// sessions of the given sizes: streams a warm-up update phase (so every
/// epoch exercises the index's dirty repair), then measures both read modes
/// over the same seeded query sequence and scores the approximate results
/// against the exact oracle.
///
/// # Panics
///
/// Panics on setup failures, and when the serving contract behind the
/// numbers is broken: any approximate score that is not bit-identical to
/// the exact score of the same vertex, mean recall@10 below 0.95, or any
/// post-bootstrap full index rebuild (repairs must carry every epoch).
pub fn run_topk_bench(sizes: &[usize], seed: u64) -> TopKBenchReport {
    const K: usize = 10;
    let points = sizes
        .iter()
        .map(|&vertices| run_topk_point(vertices, K, seed))
        .collect();
    TopKBenchReport { k: K, points }
}

fn run_topk_point(vertices: usize, k: usize, seed: u64) -> TopKBenchPoint {
    let feature_dim = 16;
    let classes = 16;
    let spec = DatasetSpec::custom(vertices, 6.0, feature_dim, classes);
    let full = spec.generate(seed).expect("dataset generation");
    let warmup_updates = (vertices / 10).clamp(200, 2_000);
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: warmup_updates,
            seed: seed ^ 0x70_9c,
            ..Default::default()
        },
    )
    .expect("update stream");
    let model = Workload::GcS
        .build_model(feature_dim, 32, classes, 2, seed ^ 0x77)
        .expect("model construction");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap inference");
    let stream: Vec<GraphUpdate> = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    let engine = RippleEngine::new(plan.snapshot, model, store, RippleConfig::default())
        .expect("serial engine");
    // The benchmark's operating point, tuned for dot-product retrieval over
    // GNN embeddings: many small clusters probed by MIP bound beat few big
    // ones at the same probed fraction (the probe ranking gets more to work
    // with), so over-cluster relative to the √n default and probe a small
    // fraction. Smaller graphs have a flatter recall-vs-fraction curve and
    // need a larger fraction.
    let mut params = crate::IndexParams::default();
    let base = params.effective_clusters(vertices);
    let (cluster_mult, probe_frac) = if vertices >= 20_000 {
        (16, 0.04)
    } else if vertices >= 5_000 {
        (8, 0.12)
    } else {
        // Tiny graphs: postings average only a handful of rows, so the probe
        // fraction has to be large for recall — there is no sublinear win to
        // chase at this scale anyway, the point is exercising the same path.
        (1, 0.80)
    };
    params.clusters = base * cluster_mult;
    let clusters = params.effective_clusters(vertices);
    let nprobe = ((clusters as f64 * probe_frac).ceil() as usize).max(DEFAULT_NPROBE);
    let serve = ServeConfig::builder()
        .max_batch(64)
        .index(params)
        .build()
        .unwrap();
    let handle = spawn(engine, serve).expect("serving session");

    // Warm-up: stream the updates and drain, so the measured index state is
    // the product of per-epoch dirty repair, not the bootstrap build.
    let client = handle.client();
    for update in stream {
        if client.submit(update) == Submission::Closed {
            break;
        }
    }
    let metrics = handle.metrics();
    let drain_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        handle.flush();
        if metrics.applied() >= metrics.enqueued() {
            break;
        }
        assert!(
            Instant::now() < drain_deadline && metrics.engine_errors() == 0,
            "warm-up failed to drain cleanly"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let warm = handle.index_stats().expect("benchmark sessions index");
    assert_eq!(warm.builds, 1, "exactly the bootstrap build");
    assert_eq!(
        warm.rebuilds, 0,
        "every warm-up epoch must repair, never rebuild: {warm:?}"
    );
    assert!(warm.repairs > 0, "warm-up published no repaired epochs");

    // Measure: the same seeded query sequence through both read modes, each
    // approximate read scored against the exact oracle answered on the same
    // snapshot (the session is drained, so both modes see identical state).
    let mut queries = handle.query_service();
    let num_queries = 200;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbe9c);
    let mut exact_lat = LatencyHistogram::new();
    let mut approx_lat = LatencyHistogram::new();
    let mut recall_sum = 0.0f64;
    for _ in 0..num_queries {
        let query: Vec<f32> = (0..classes).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let started = Instant::now();
        let exact = queries
            .top_k(&TopKRequest::new(query.clone(), k))
            .expect("exact top-k");
        exact_lat.record(started.elapsed());
        let started = Instant::now();
        let approx = queries
            .top_k(&TopKRequest::new(query, k).approx(nprobe))
            .expect("approx top-k");
        approx_lat.record(started.elapsed());
        let mut hits = 0usize;
        for (v, score) in &approx.value {
            if let Some((_, exact_score)) = exact.value.iter().find(|(ev, _)| ev == v) {
                hits += 1;
                assert_eq!(
                    score.to_bits(),
                    exact_score.to_bits(),
                    "approx must score from the same snapshot as exact (vertex {v:?})"
                );
            }
        }
        recall_sum += hits as f64 / exact.value.len().max(1) as f64;
    }
    let recall_at_10 = recall_sum / num_queries as f64;
    assert!(
        recall_at_10 >= 0.95,
        "recall@{k} {recall_at_10:.4} under the 0.95 floor at |V|={vertices} (nprobe {nprobe}/{clusters})"
    );

    let index = handle.index_stats().expect("benchmark sessions index");
    handle.shutdown().expect("serving session failed");
    let exact_p50 = exact_lat.percentile(50.0);
    let approx_p50 = approx_lat.percentile(50.0);
    TopKBenchPoint {
        vertices,
        clusters,
        nprobe,
        queries: num_queries,
        exact_p50,
        exact_p99: exact_lat.percentile(99.0),
        approx_p50,
        approx_p99: approx_lat.percentile(99.0),
        speedup_p50: exact_p50.as_secs_f64() / approx_p50.as_secs_f64().max(1e-9),
        recall_at_10,
        index,
    }
}

/// One `nprobe` operating point of the recall-vs-nprobe sweep.
#[derive(Debug, Clone)]
pub struct NprobeSweepPoint {
    /// Clusters probed per approximate query at this point.
    pub nprobe: usize,
    /// Fraction of the index's clusters this probes.
    pub probe_fraction: f64,
    /// Mean recall@k against the exact oracle.
    pub recall: f64,
    /// Median approximate-read latency.
    pub approx_p50: Duration,
    /// `exact_p50 / approx_p50` at this operating point.
    pub speedup_p50: f64,
}

/// Result of [`run_nprobe_sweep`]: the recall-vs-nprobe trade-off curve of
/// one serving session, measured over a shared seeded query sequence.
#[derive(Debug, Clone)]
pub struct NprobeSweepReport {
    /// Vertices of the swept session's graph.
    pub vertices: usize,
    /// `k` used throughout (recall is recall@k).
    pub k: usize,
    /// Coarse clusters of the session's IVF index.
    pub clusters: usize,
    /// Queries measured per point.
    pub queries: usize,
    /// Median exact-scan latency (the sweep's common baseline).
    pub exact_p50: Duration,
    /// The measured points, in ascending `nprobe` order.
    pub points: Vec<NprobeSweepPoint>,
}

impl NprobeSweepReport {
    /// The `BENCH_nprobe.json` artifact (hand-rolled: the offline serde
    /// shim has no serialiser).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"serve_nprobe_sweep\",\n");
        out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
        out.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        out.push_str(&format!("  \"k\": {},\n", self.k));
        out.push_str(&format!("  \"clusters\": {},\n", self.clusters));
        out.push_str(&format!("  \"queries\": {},\n", self.queries));
        out.push_str(&format!(
            "  \"exact_p50_us\": {:.3},\n",
            self.exact_p50.as_secs_f64() * 1e6
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"nprobe\": {},\n", p.nprobe));
            out.push_str(&format!(
                "      \"probe_fraction\": {:.4},\n",
                p.probe_fraction
            ));
            out.push_str(&format!("      \"recall\": {:.4},\n", p.recall));
            out.push_str(&format!(
                "      \"approx_p50_us\": {:.3},\n",
                p.approx_p50.as_secs_f64() * 1e6
            ));
            out.push_str(&format!("      \"speedup_p50\": {:.3}\n", p.speedup_p50));
            out.push_str(if i + 1 == self.points.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl std::fmt::Display for NprobeSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "recall-vs-nprobe, |V|={}, {} clusters, exact p50 {:.2} us",
            self.vertices,
            self.clusters,
            self.exact_p50.as_secs_f64() * 1e6
        )?;
        writeln!(
            f,
            "{:>7} {:>10} {:>10} {:>13} {:>9}",
            "nprobe", "fraction", "recall", "approx p50 us", "speedup"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>7} {:>10.3} {:>10.4} {:>13.2} {:>8.1}x",
                p.nprobe,
                p.probe_fraction,
                p.recall,
                p.approx_p50.as_secs_f64() * 1e6,
                p.speedup_p50
            )?;
        }
        Ok(())
    }
}

/// Sweeps the recall-vs-nprobe trade-off of one single-engine session: warms
/// the index through a streamed update phase (every epoch exercises dirty
/// repair), then measures each probe count over the same seeded query
/// sequence against the shared exact oracle. Recall must be non-decreasing
/// in `nprobe` up to measurement noise; the caller picks the knee.
///
/// # Panics
///
/// Panics on setup failures and if the session fails to drain — the sweep
/// treats those as fatal harness errors.
pub fn run_nprobe_sweep(
    vertices: usize,
    k: usize,
    nprobes: &[usize],
    seed: u64,
) -> NprobeSweepReport {
    let feature_dim = 16;
    let classes = 16;
    let spec = DatasetSpec::custom(vertices, 6.0, feature_dim, classes);
    let full = spec.generate(seed).expect("dataset generation");
    let warmup_updates = (vertices / 10).clamp(200, 2_000);
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: warmup_updates,
            seed: seed ^ 0x70_9c,
            ..Default::default()
        },
    )
    .expect("update stream");
    let model = Workload::GcS
        .build_model(feature_dim, 32, classes, 2, seed ^ 0x77)
        .expect("model construction");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap inference");
    let stream: Vec<GraphUpdate> = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    let engine = RippleEngine::new(plan.snapshot, model, store, RippleConfig::default())
        .expect("serial engine");
    // Over-cluster like the top-k benchmark, so small probe counts leave
    // recall headroom to sweep through instead of saturating immediately.
    let mut params = crate::IndexParams::default();
    params.clusters = params.effective_clusters(vertices) * 8;
    let clusters = params.effective_clusters(vertices);
    let serve = ServeConfig::builder()
        .max_batch(64)
        .index(params)
        .build()
        .unwrap();
    let handle = spawn(engine, serve).expect("serving session");

    let client = handle.client();
    for update in stream {
        if client.submit(update) == Submission::Closed {
            break;
        }
    }
    let metrics = handle.metrics();
    let drain_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        handle.flush();
        if metrics.applied() >= metrics.enqueued() {
            break;
        }
        assert!(
            Instant::now() < drain_deadline && metrics.engine_errors() == 0,
            "warm-up failed to drain cleanly"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // The session is drained, so every point reads the same snapshot: the
    // shared query sequence makes the recall column directly comparable.
    let num_queries = 100;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xbe9c);
    let query_vecs: Vec<Vec<f32>> = (0..num_queries)
        .map(|_| (0..classes).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut queries = handle.query_service();
    let mut exact_lat = LatencyHistogram::new();
    let exact_oracle: Vec<_> = query_vecs
        .iter()
        .map(|q| {
            let started = Instant::now();
            let exact = queries
                .top_k(&TopKRequest::new(q.clone(), k))
                .expect("exact top-k");
            exact_lat.record(started.elapsed());
            exact.value
        })
        .collect();
    let exact_p50 = exact_lat.percentile(50.0);

    let mut points = Vec::with_capacity(nprobes.len());
    for &nprobe in nprobes {
        let nprobe = nprobe.max(1);
        let mut approx_lat = LatencyHistogram::new();
        let mut recall_sum = 0.0f64;
        for (q, oracle) in query_vecs.iter().zip(&exact_oracle) {
            let started = Instant::now();
            let approx = queries
                .top_k(&TopKRequest::new(q.clone(), k).approx(nprobe))
                .expect("approx top-k");
            approx_lat.record(started.elapsed());
            let hits = approx
                .value
                .iter()
                .filter(|(v, _)| oracle.iter().any(|(ov, _)| ov == v))
                .count();
            recall_sum += hits as f64 / oracle.len().max(1) as f64;
        }
        let approx_p50 = approx_lat.percentile(50.0);
        points.push(NprobeSweepPoint {
            nprobe,
            probe_fraction: nprobe as f64 / clusters.max(1) as f64,
            recall: recall_sum / num_queries as f64,
            approx_p50,
            speedup_p50: exact_p50.as_secs_f64() / approx_p50.as_secs_f64().max(1e-9),
        });
    }
    handle.shutdown().expect("serving session failed");
    NprobeSweepReport {
        vertices,
        k,
        clusters,
        queries: num_queries,
        exact_p50,
        points,
    }
}

/// One measured mode of the admission benchmark: a scenario run at one
/// in-flight depth (depth 0 is the serial baseline every other depth is
/// bit-compared against).
#[derive(Debug, Clone)]
pub struct AdmissionBenchPoint {
    /// Which workload shape this point ran.
    pub scenario: &'static str,
    /// In-flight admission depth (0 = serial pipeline, admission off).
    pub depth: usize,
    /// Windows committed (= epochs published).
    pub windows: u64,
    /// Windows committed inside concurrent groups of two or more.
    pub admitted_concurrent: u64,
    /// Footprint conflicts detected while staging.
    pub conflicts: u64,
    /// Windows that joined an already non-empty staged group.
    pub merged: u64,
    /// Windows serialized behind a conflicting in-flight group.
    pub serialized: u64,
    /// Wall-clock time from first submit to drained shutdown.
    pub elapsed: Duration,
    /// Bit-parity violations against the serial baseline: differing
    /// per-window commit stamps or a diverged final store. Must be zero —
    /// [`run_admission_bench`] also panics on any.
    pub parity_violations: u64,
}

/// Result of [`run_admission_bench`]: the serial baseline plus every
/// admission depth, for each scenario.
#[derive(Debug, Clone)]
pub struct AdmissionBenchReport {
    /// Measured points, grouped by scenario in depth order (serial first).
    pub points: Vec<AdmissionBenchPoint>,
}

impl AdmissionBenchReport {
    /// Total windows committed inside concurrent groups, across all points.
    pub fn admitted_concurrent(&self) -> u64 {
        self.points.iter().map(|p| p.admitted_concurrent).sum()
    }

    /// Total bit-parity violations across all points (must be zero).
    pub fn parity_violations(&self) -> u64 {
        self.points.iter().map(|p| p.parity_violations).sum()
    }

    /// The `BENCH_admission.json` artifact (hand-rolled: the offline serde
    /// shim has no serialiser).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"serve_admission_bench\",\n");
        out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
        out.push_str(&format!(
            "  \"admitted_concurrent\": {},\n",
            self.admitted_concurrent()
        ));
        out.push_str(&format!(
            "  \"parity_violations\": {},\n",
            self.parity_violations()
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"scenario\": \"{}\",\n", p.scenario));
            out.push_str(&format!("      \"depth\": {},\n", p.depth));
            out.push_str(&format!("      \"windows\": {},\n", p.windows));
            out.push_str(&format!(
                "      \"admitted_concurrent\": {},\n",
                p.admitted_concurrent
            ));
            out.push_str(&format!("      \"conflicts\": {},\n", p.conflicts));
            out.push_str(&format!("      \"merged\": {},\n", p.merged));
            out.push_str(&format!("      \"serialized\": {},\n", p.serialized));
            out.push_str(&format!(
                "      \"elapsed_ms\": {:.3},\n",
                p.elapsed.as_secs_f64() * 1e3
            ));
            out.push_str(&format!(
                "      \"parity_violations\": {}\n",
                p.parity_violations
            ));
            out.push_str(if i + 1 == self.points.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl std::fmt::Display for AdmissionBenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>16} {:>6} {:>8} {:>9} {:>10} {:>7} {:>11} {:>11} {:>7}",
            "scenario",
            "depth",
            "windows",
            "admitted",
            "conflicts",
            "merged",
            "serialized",
            "elapsed ms",
            "parity"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>16} {:>6} {:>8} {:>9} {:>10} {:>7} {:>11} {:>11.2} {:>7}",
                p.scenario,
                p.depth,
                p.windows,
                p.admitted_concurrent,
                p.conflicts,
                p.merged,
                p.serialized,
                p.elapsed.as_secs_f64() * 1e3,
                if p.parity_violations == 0 {
                    "ok"
                } else {
                    "FAIL"
                },
            )?;
        }
        Ok(())
    }
}

/// One admission-bench workload: a bootstrap spine plus the update stream
/// and the window size that shapes its footprints.
struct AdmissionScenario {
    name: &'static str,
    graph: DynamicGraph,
    model: ripple_gnn::GnnModel,
    store: ripple_gnn::EmbeddingStore,
    updates: Vec<GraphUpdate>,
    max_batch: usize,
}

/// What one serial or admission run leaves behind for bit-comparison.
struct AdmissionRun {
    store: ripple_gnn::EmbeddingStore,
    stamps: Vec<(u64, u64, u64, u64)>,
    metrics: MetricsReport,
    elapsed: Duration,
}

fn run_admission_mode(scenario: &AdmissionScenario, depth: usize) -> AdmissionRun {
    let engine = RippleEngine::new(
        scenario.graph.clone(),
        scenario.model.clone(),
        scenario.store.clone(),
        RippleConfig::default(),
    )
    .expect("bench engine");
    let builder = ServeConfig::builder()
        .max_batch(scenario.max_batch)
        .max_delay(Duration::from_secs(60))
        .record_batches(true);
    let builder = if depth > 0 {
        builder.concurrent_admission(depth)
    } else {
        builder
    };
    let handle = spawn(engine, builder.build().unwrap()).expect("bench session");
    let client = handle.client();
    let started = Instant::now();
    for update in &scenario.updates {
        client.submit(update.clone());
    }
    handle.flush().expect("bench scheduler alive");
    let elapsed = started.elapsed();
    let stamps = handle
        .flush_log()
        .expect("record_batches on")
        .snapshot()
        .into_iter()
        .map(|r| (r.window_seq, r.epoch, r.applied_seq, r.topology_epoch))
        .collect();
    let metrics = handle.metrics().report();
    let engine = handle.shutdown().expect("bench shutdown");
    AdmissionRun {
        store: engine.store().clone(),
        stamps,
        metrics,
        elapsed,
    }
}

/// Disconnected ring blocks: consecutive windows touch different
/// components, so footprints are pairwise disjoint and groups fill to the
/// in-flight cap — the best case for concurrent admission.
fn disjoint_blocks_scenario(seed: u64) -> AdmissionScenario {
    const BLOCKS: usize = 16;
    const PER: usize = 8;
    const DIM: usize = 8;
    const MAX_BATCH: usize = 4;
    let mut edges = Vec::new();
    for b in 0..BLOCKS {
        for i in 0..PER {
            edges.push((
                VertexId((b * PER + i) as u32),
                VertexId((b * PER + (i + 1) % PER) as u32),
            ));
        }
    }
    let graph = DynamicGraph::from_edges(BLOCKS * PER, DIM, &edges).expect("block graph");
    let model = Workload::GcS
        .build_model(DIM, 16, 4, 2, seed ^ 0xAD)
        .expect("bench model");
    let store = full_inference(&graph, &model).expect("bench bootstrap");
    let mut updates = Vec::new();
    for round in 0..4usize {
        for b in 0..BLOCKS {
            for j in 0..MAX_BATCH {
                updates.push(GraphUpdate::update_feature(
                    VertexId((b * PER + j) as u32),
                    vec![(round * BLOCKS + b + j) as f32 * 0.015_625; DIM],
                ));
            }
        }
    }
    AdmissionScenario {
        name: "disjoint-blocks",
        graph,
        model,
        store,
        updates,
        max_batch: MAX_BATCH,
    }
}

/// Hub churn: every window rewrites one hub vertex (plus a pseudorandom
/// bystander), so staged groups conflict with the very next window — the
/// worst case, where admission must serialize and still stay bit-exact.
fn hub_churn_scenario(seed: u64) -> AdmissionScenario {
    const DIM: usize = 8;
    let graph = DatasetSpec::custom(240, 4.0, DIM, 4)
        .generate(seed)
        .expect("hub graph");
    let model = Workload::GcS
        .build_model(DIM, 16, 4, 2, seed ^ 0xBE)
        .expect("bench model");
    let store = full_inference(&graph, &model).expect("bench bootstrap");
    let n = graph.num_vertices() as u64;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let updates = (0..192u64)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            if i % 2 == 0 {
                GraphUpdate::update_feature(VertexId(0), vec![(r % 16) as f32 * 0.0625; DIM])
            } else {
                GraphUpdate::update_feature(
                    VertexId((r % n) as u32),
                    vec![(r % 8) as f32 * 0.125; DIM],
                )
            }
        })
        .collect();
    AdmissionScenario {
        name: "hub-churn",
        graph,
        model,
        store,
        updates,
        max_batch: 4,
    }
}

/// Benchmarks footprint-based concurrent admission against the serial
/// pipeline on a best-case (disjoint blocks) and worst-case (hub churn)
/// stream, at in-flight depths 1, 2 and 4. Every depth is bit-compared
/// against the serial baseline: per-window commit stamps and the final
/// store must match exactly.
///
/// # Panics
///
/// Panics on setup failures, on any bit-parity violation, and if the
/// disjoint-blocks scenario fails to admit a single concurrent group at
/// depth >= 2 (the machinery the benchmark exists to measure).
pub fn run_admission_bench(seed: u64) -> AdmissionBenchReport {
    let mut points = Vec::new();
    for scenario in [disjoint_blocks_scenario(seed), hub_churn_scenario(seed)] {
        let serial = run_admission_mode(&scenario, 0);
        points.push(AdmissionBenchPoint {
            scenario: scenario.name,
            depth: 0,
            windows: serial.metrics.epochs,
            admitted_concurrent: 0,
            conflicts: 0,
            merged: 0,
            serialized: 0,
            elapsed: serial.elapsed,
            parity_violations: 0,
        });
        for depth in [1usize, 2, 4] {
            let run = run_admission_mode(&scenario, depth);
            let mut violations = 0u64;
            if run.stamps != serial.stamps {
                violations += 1;
            }
            if run.store != serial.store {
                violations += 1;
            }
            assert_eq!(
                violations, 0,
                "{} depth {depth}: admission diverged from the serial pipeline",
                scenario.name
            );
            if scenario.name == "disjoint-blocks" && depth >= 2 {
                assert!(
                    run.metrics.admitted_concurrent > 0,
                    "disjoint windows at depth {depth} must form concurrent groups"
                );
            }
            points.push(AdmissionBenchPoint {
                scenario: scenario.name,
                depth,
                windows: run.metrics.epochs,
                admitted_concurrent: run.metrics.admitted_concurrent,
                conflicts: run.metrics.conflicts,
                merged: run.metrics.merged,
                serialized: run.metrics.serialized,
                elapsed: run.elapsed,
                parity_violations: violations,
            });
        }
    }
    AdmissionBenchReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LoadgenConfig {
        LoadgenConfig {
            vertices: 150,
            avg_degree: 4.0,
            feature_dim: 6,
            classes: 4,
            updates: 40,
            readers: 2,
            serve: ServeConfig::builder().max_batch(8).build().unwrap(),
            ..Default::default()
        }
    }

    #[test]
    fn tiny_run_upholds_the_serving_contract() {
        let report = run_loadgen(&tiny_config());
        assert!(report.contract_upheld(), "{report}");
        // The stream builder may produce slightly fewer updates than asked;
        // every offered update must have been accepted and applied.
        assert!(report.updates_offered >= 30);
        assert_eq!(report.metrics.applied, report.updates_offered as u64);
        assert!(report.epochs >= 1);
        assert!(report.reads > 0, "readers must have been served");
        assert!(report.read_p99 >= report.read_p50);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve_loadgen\""));
        assert!(json.contains("\"contract_upheld\": true"));
        assert!(report.to_string().contains("contract"));
    }

    #[test]
    fn parallel_engine_runs_behind_the_scheduler() {
        let config = LoadgenConfig {
            engine_threads: 2,
            updates: 24,
            ..tiny_config()
        };
        let report = run_loadgen(&config);
        assert!(report.contract_upheld(), "{report}");
        assert_eq!(report.engine_threads, 2);
        assert_eq!(report.metrics.applied, report.updates_offered as u64);
    }

    #[test]
    fn approx_read_mode_upholds_the_serving_contract() {
        let config = LoadgenConfig {
            read_mode: ReadMode::Approx { nprobe: 4 },
            ..tiny_config()
        };
        let report = run_loadgen(&config);
        assert!(report.contract_upheld(), "{report}");
        assert!(report.reads > 0, "readers must have been served");
    }

    #[test]
    fn tiny_topk_bench_measures_both_modes() {
        let report = run_topk_bench(&[400], 7);
        assert_eq!(report.points.len(), 1);
        let p = &report.points[0];
        assert_eq!(p.vertices, 400);
        assert!(p.recall_at_10 >= 0.95);
        assert_eq!(p.index.rebuilds, 0);
        assert!(p.index.repairs > 0);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve_topk_bench\""));
        assert!(json.contains("\"recall_at_10\""));
        assert!(report.to_string().contains("recall@10"));
    }

    #[test]
    fn tiny_nprobe_sweep_traces_the_recall_curve() {
        let report = run_nprobe_sweep(400, 10, &[1, 4, usize::MAX], 7);
        assert_eq!(report.points.len(), 3);
        assert!(report.clusters >= 1);
        // Probing everything visits every row: recall must be perfect, and
        // the curve is non-decreasing in nprobe (same drained snapshot).
        let last = report.points.last().unwrap();
        assert!(
            (last.recall - 1.0).abs() < 1e-9,
            "full probe must reach recall 1.0: {}",
            last.recall
        );
        assert!(report.points[0].recall <= last.recall + 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve_nprobe_sweep\""));
        assert!(json.contains("\"recall\""));
        assert!(report.to_string().contains("nprobe"));
    }

    #[test]
    fn admission_bench_admits_concurrently_with_zero_parity_violations() {
        let report = run_admission_bench(7);
        assert_eq!(report.parity_violations(), 0);
        assert!(
            report.admitted_concurrent() > 0,
            "the disjoint-blocks scenario must form concurrent groups: {report}"
        );
        let hub_conflicts: u64 = report
            .points
            .iter()
            .filter(|p| p.scenario == "hub-churn" && p.depth >= 2)
            .map(|p| p.conflicts)
            .sum();
        assert!(
            hub_conflicts > 0,
            "hub churn at depth >= 2 must detect conflicts: {report}"
        );
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"serve_admission_bench\""));
        assert!(json.contains("\"parity_violations\": 0"));
        assert!(report.to_string().contains("disjoint-blocks"));
    }

    #[test]
    fn sharded_run_upholds_the_serving_contract() {
        let config = LoadgenConfig {
            shards: 2,
            ..tiny_config()
        };
        let report = run_loadgen(&config);
        assert!(report.contract_upheld(), "{report}");
        assert_eq!(report.shards, 2);
        // A cross-shard edge update is routed (and applied) at both owners,
        // so `applied` can exceed the raw offered count — but it must match
        // the routed count exactly once the tier quiesces.
        assert_eq!(report.metrics.applied, report.metrics.enqueued);
        assert!(report.metrics.applied >= report.updates_offered as u64);
        assert!(report.epochs >= 1);
        assert!(report.reads > 0, "readers must have been served");
        assert!(report.to_json().contains("\"shards\": 2"));
    }
}
