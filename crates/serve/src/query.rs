//! Read-side query API over published epoch snapshots.
//!
//! A [`QueryService`] is a per-thread handle: it owns cached
//! [`SnapshotReader`]s (and, when the session maintains one, cached
//! [`IndexReader`]s), so the hot path of every query is one atomic epoch
//! check plus reads against an immutable snapshot — no locks shared with the
//! engine, no blocking on in-flight propagation. Every response is stamped
//! with the epoch it was served at and the **staleness** at read time: how
//! many accepted updates were not yet visible in that epoch.
//!
//! # The top-k request surface
//!
//! Similarity lookups go through one validated entry point:
//! [`QueryService::top_k`] executes a [`TopKRequest`], which names the
//! query vector, `k`, a [`ReadMode`] — [`ReadMode::Exact`] scans every row,
//! [`ReadMode::Approx`] probes the session's epoch-repaired IVF index
//! (see [`crate::index`]) — and an optional epoch floor. Malformed requests
//! (`k == 0`, zero probes, a query of the wrong width, an approximate read
//! against a session serving without an index) fail up front with
//! [`ServeError::InvalidQuery`]; an unmet epoch floor fails with
//! [`ServeError::StaleRead`]. Approximate reads score candidates from the
//! same store snapshot the exact scan reads, so every returned score is
//! bit-identical to the exact scan's — approximation affects *which* rows
//! are considered, never their scores.
//!
//! # Sharded sessions
//!
//! Against a sharded session ([`crate::spawn_sharded`]) the service owns one
//! reader per shard and epochs form a **vector clock**: each shard publishes
//! its own epoch sequence. A point read resolves the owning shard from the
//! partitioning and is stamped with that shard's scalar epoch (plus
//! [`Stamped::shard`]); a whole-graph read such as [`QueryService::top_k`]
//! touches every shard and is stamped with the *minimum* epoch across shards
//! plus the full per-shard vector in [`Stamped::epochs`]. Staleness for
//! whole-graph reads sums the per-shard backlogs, **deduplicated** by
//! logical update: a cross-shard edge update is delivered to both endpoint
//! owners, and the duplicate (secondary) deliveries pending at their shards
//! are subtracted so one not-yet-visible update counts once.

use crate::index::IndexReader;
use crate::metrics::ServeMetrics;
use crate::scheduler::ServeError;
use crate::versioned::{EpochSnapshot, SnapshotReader};
use ripple_graph::partition::Partitioning;
use ripple_graph::{PartitionId, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A query response together with its consistency stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The response payload.
    pub value: T,
    /// Epoch of the snapshot that served this query. For a sharded
    /// whole-graph read this is the minimum epoch across the shards read.
    pub epoch: u64,
    /// Accepted raw updates reflected in that snapshot (summed across
    /// shards for a sharded whole-graph read).
    pub applied_seq: u64,
    /// Accepted updates not yet visible at read time (enqueued − applied;
    /// summed across shards for a sharded whole-graph read, counting each
    /// logical update once even when it routed to two shards).
    pub staleness: u64,
    /// The engine's topology epoch (update batches absorbed by its CSR
    /// topology snapshot) behind the serving snapshot — lets callers see
    /// how fresh the *structure* behind the answer is, independently of the
    /// embedding epoch. Minimum across shards for a whole-graph read.
    pub topology_epoch: u64,
    /// The shard that served a point read against a sharded session;
    /// `None` for single-engine sessions and for whole-graph reads.
    pub shard: Option<PartitionId>,
    /// The per-shard epoch vector of a whole-graph read against a sharded
    /// session (`epochs[p]` is shard `p`'s epoch at read time); `None` for
    /// single-engine sessions and point reads.
    pub epochs: Option<Vec<u64>>,
}

impl<T> Stamped<T> {
    /// Maps the payload, keeping the stamp.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Stamped<U> {
        Stamped {
            value: f(self.value),
            epoch: self.epoch,
            applied_seq: self.applied_seq,
            staleness: self.staleness,
            topology_epoch: self.topology_epoch,
            shard: self.shard,
            epochs: self.epochs,
        }
    }
}

fn stamp<T>(
    value: T,
    snap: &EpochSnapshot,
    submitted: u64,
    shard: Option<PartitionId>,
) -> Stamped<T> {
    Stamped {
        value,
        epoch: snap.epoch(),
        applied_seq: snap.applied_seq(),
        staleness: submitted.saturating_sub(snap.applied_seq()),
        topology_epoch: snap.topology_epoch(),
        shard,
        epochs: None,
    }
}

/// How a [`TopKRequest`] trades recall for scan cost.
///
/// Marked `#[non_exhaustive]`: future read modes (e.g. a re-ranked or
/// quantised path) may be added without a breaking change, so match with a
/// wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadMode {
    /// Score every row of the snapshot — exact, `O(|V|)` per query.
    Exact,
    /// Probe the `nprobe` clusters of the session's IVF index whose
    /// centroids best match the query, scoring only their postings —
    /// sublinear when `nprobe` covers a fraction of the clusters. Scores
    /// are read from the store snapshot, so they are bit-identical to
    /// [`ReadMode::Exact`] for every returned vertex; only recall is
    /// approximate. `nprobe` clamps to the cluster count, so
    /// `usize::MAX` probes everything (and must then match the exact scan).
    Approx {
        /// How many clusters to probe (must be non-zero).
        nprobe: usize,
    },
}

/// A validated top-k similarity request, executed by
/// [`QueryService::top_k`].
///
/// Built fluently — `TopKRequest::new(query, k)` is an exact read, and the
/// builder methods opt into approximation or freshness floors:
///
/// ```
/// use ripple_serve::{ReadMode, TopKRequest};
///
/// let request = TopKRequest::new(vec![1.0, 0.0, 0.5], 10)
///     .approx(4)
///     .min_epoch(2);
/// assert_eq!(request.mode, ReadMode::Approx { nprobe: 4 });
/// ```
///
/// Marked `#[non_exhaustive]` so future knobs (filters, re-ranking) extend
/// the struct without breaking callers; construct via [`TopKRequest::new`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TopKRequest {
    /// The query vector; its width must match the final-layer embedding
    /// width or the request fails with [`ServeError::InvalidQuery`].
    pub query: Vec<f32>,
    /// How many results to return (must be non-zero; clamps to `|V|`).
    pub k: usize,
    /// Exact scan or IVF probe; defaults to [`ReadMode::Exact`].
    pub mode: ReadMode,
    /// Freshness floor: the read fails with [`ServeError::StaleRead`]
    /// unless it is served at an epoch `>=` this (for a sharded session,
    /// unless *every* shard has reached it). `None` accepts any epoch.
    pub min_epoch: Option<u64>,
}

impl TopKRequest {
    /// An exact top-`k` request for `query`, with no freshness floor.
    pub fn new(query: Vec<f32>, k: usize) -> TopKRequest {
        TopKRequest {
            query,
            k,
            mode: ReadMode::Exact,
            min_epoch: None,
        }
    }

    /// Switches to the approximate index path, probing `nprobe` clusters.
    pub fn approx(mut self, nprobe: usize) -> TopKRequest {
        self.mode = ReadMode::Approx { nprobe };
        self
    }

    /// Switches (back) to the exact full-scan path.
    pub fn exact(mut self) -> TopKRequest {
        self.mode = ReadMode::Exact;
        self
    }

    /// Requires the read to be served at epoch `epoch` or newer.
    pub fn min_epoch(mut self, epoch: u64) -> TopKRequest {
        self.min_epoch = Some(epoch);
        self
    }
}

/// Which serving topology a [`QueryService`] reads from: one engine behind
/// one publisher, or one publisher per shard.
#[derive(Debug, Clone)]
enum ServeTopology {
    Single {
        reader: SnapshotReader,
        /// The session's IVF index reader (`None` when spawned with
        /// [`crate::ServeConfigBuilder::no_index`]).
        index: Option<IndexReader>,
        submitted: Arc<AtomicU64>,
    },
    Sharded {
        /// One reader per shard, indexed by [`PartitionId`].
        readers: Vec<SnapshotReader>,
        /// One IVF index reader per shard (each covering that shard's owned
        /// rows), or `None` when the session serves without an index.
        indexes: Option<Vec<IndexReader>>,
        /// Per-shard accepted-update counters, indexed like `readers`.
        submitted: Vec<Arc<AtomicU64>>,
        /// Per-shard counts of *secondary* (duplicate) deliveries of
        /// cross-shard edge updates, used to dedup merged staleness.
        secondary_submitted: Vec<Arc<AtomicU64>>,
        partitioning: Arc<Partitioning>,
    },
}

/// Per-thread query handle over the latest published snapshot(s).
#[derive(Debug, Clone)]
pub struct QueryService {
    topology: ServeTopology,
    metrics: Arc<ServeMetrics>,
}

impl QueryService {
    pub(crate) fn new(
        reader: SnapshotReader,
        index: Option<IndexReader>,
        submitted: Arc<AtomicU64>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        QueryService {
            topology: ServeTopology::Single {
                reader,
                index,
                submitted,
            },
            metrics,
        }
    }

    pub(crate) fn new_sharded(
        readers: Vec<SnapshotReader>,
        indexes: Option<Vec<IndexReader>>,
        submitted: Vec<Arc<AtomicU64>>,
        secondary_submitted: Vec<Arc<AtomicU64>>,
        partitioning: Arc<Partitioning>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        debug_assert_eq!(readers.len(), submitted.len());
        debug_assert_eq!(readers.len(), secondary_submitted.len());
        if let Some(indexes) = &indexes {
            debug_assert_eq!(readers.len(), indexes.len());
        }
        QueryService {
            topology: ServeTopology::Sharded {
                readers,
                indexes,
                submitted,
                secondary_submitted,
                partitioning,
            },
            metrics,
        }
    }

    /// The owning shard's snapshot, submitted counter and id for `v`;
    /// `None` if `v` is outside the partitioned id space.
    fn point_view(
        &mut self,
        v: VertexId,
    ) -> Option<(Arc<EpochSnapshot>, u64, Option<PartitionId>)> {
        match &mut self.topology {
            ServeTopology::Single {
                reader, submitted, ..
            } => {
                let pending = submitted.load(Ordering::Relaxed);
                Some((Arc::clone(reader.snapshot()), pending, None))
            }
            ServeTopology::Sharded {
                readers,
                submitted,
                partitioning,
                ..
            } => {
                let part = *partitioning.assignment().get(v.index())?;
                let pending = submitted[part.index()].load(Ordering::Relaxed);
                Some((
                    Arc::clone(readers[part.index()].snapshot()),
                    pending,
                    Some(part),
                ))
            }
        }
    }

    /// The epoch this handle currently serves (refreshing first). For a
    /// sharded session this is the minimum epoch across shards — the epoch
    /// every shard has reached.
    pub fn epoch(&mut self) -> u64 {
        match &mut self.topology {
            ServeTopology::Single { reader, .. } => reader.epoch(),
            ServeTopology::Sharded { readers, .. } => readers
                .iter_mut()
                .map(SnapshotReader::epoch)
                .min()
                .unwrap_or(0),
        }
    }

    /// The per-shard epoch vector (refreshing first); a single-engine
    /// session reports one entry.
    pub fn epoch_vector(&mut self) -> Vec<u64> {
        match &mut self.topology {
            ServeTopology::Single { reader, .. } => vec![reader.epoch()],
            ServeTopology::Sharded { readers, .. } => {
                readers.iter_mut().map(SnapshotReader::epoch).collect()
            }
        }
    }

    /// The final-layer embedding of `v`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownVertex`] if `v` is outside the served
    /// vertex space.
    pub fn read_embedding(&mut self, v: VertexId) -> crate::Result<Stamped<Vec<f32>>> {
        let start = Instant::now();
        let (snapshot, submitted, shard) =
            self.point_view(v).ok_or(ServeError::UnknownVertex(v))?;
        let store = snapshot.store();
        if v.index() >= store.num_vertices() {
            return Err(ServeError::UnknownVertex(v));
        }
        let value = store.embedding(store.num_layers(), v).to_vec();
        let stamped = stamp(value, &snapshot, submitted, shard);
        self.metrics.record_read(start.elapsed());
        Ok(stamped)
    }

    /// The predicted class label of `v` (argmax of its final-layer
    /// embedding).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownVertex`] if `v` is outside the served
    /// vertex space.
    pub fn read_label(&mut self, v: VertexId) -> crate::Result<Stamped<usize>> {
        let start = Instant::now();
        let (snapshot, submitted, shard) =
            self.point_view(v).ok_or(ServeError::UnknownVertex(v))?;
        let store = snapshot.store();
        if v.index() >= store.num_vertices() {
            return Err(ServeError::UnknownVertex(v));
        }
        let stamped = stamp(store.predicted_label(v), &snapshot, submitted, shard);
        self.metrics.record_read(start.elapsed());
        Ok(stamped)
    }

    /// The final-layer embedding of `v`, or `None` if `v` is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use `QueryService::read_embedding`, which reports why a read failed"
    )]
    pub fn embedding(&mut self, v: VertexId) -> Option<Stamped<Vec<f32>>> {
        self.read_embedding(v).ok()
    }

    /// The predicted class label of `v` (argmax of its final-layer
    /// embedding), or `None` if `v` is out of range.
    #[deprecated(
        since = "0.1.0",
        note = "use `QueryService::read_label`, which reports why a read failed"
    )]
    pub fn predicted_label(&mut self, v: VertexId) -> Option<Stamped<usize>> {
        self.read_label(v).ok()
    }

    /// Executes a validated top-k similarity request (see [`TopKRequest`]).
    ///
    /// [`ReadMode::Exact`] scans every row of the snapshot;
    /// [`ReadMode::Approx`] probes the session's IVF index and scores only
    /// the matched postings, from the same snapshot — so every returned
    /// score is bit-identical to the exact scan's. Ties break towards the
    /// smaller vertex id, so results are deterministic. Against a sharded
    /// session every vertex is scored from its owning shard's snapshot, and
    /// the stamp carries the per-shard epoch vector ([`Stamped::epochs`])
    /// with [`Stamped::epoch`] set to its minimum.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidQuery`] — `k == 0`, `nprobe == 0`, the query
    ///   width does not match the embedding width, or an approximate read
    ///   against a session spawned with
    ///   [`crate::ServeConfigBuilder::no_index`].
    /// * [`ServeError::StaleRead`] — the serving epoch (every shard's, for
    ///   a sharded session) has not reached [`TopKRequest::min_epoch`].
    pub fn top_k(&mut self, request: &TopKRequest) -> crate::Result<Stamped<Vec<(VertexId, f32)>>> {
        if request.k == 0 {
            return Err(ServeError::InvalidQuery(
                "top-k requests need k > 0".to_string(),
            ));
        }
        match request.mode {
            ReadMode::Approx { nprobe: 0 } => {
                return Err(ServeError::InvalidQuery(
                    "approximate top-k requests need nprobe > 0".to_string(),
                ));
            }
            ReadMode::Exact | ReadMode::Approx { .. } => {}
        }
        let stamped = self.top_k_impl(&request.query, request.k, request.mode)?;
        if let Some(floor) = request.min_epoch {
            if stamped.epoch < floor {
                return Err(ServeError::StaleRead {
                    floor,
                    epoch: stamped.epoch,
                });
            }
        }
        Ok(stamped)
    }

    /// The `k` vertices whose final-layer embeddings have the largest dot
    /// product with `query`, scanning exactly. Returns `None` if `query`'s
    /// width does not match the embedding width.
    #[deprecated(
        since = "0.1.0",
        note = "use `QueryService::top_k` with a `TopKRequest`, which also offers the \
                approximate index path and typed errors"
    )]
    pub fn top_k_by_dot(
        &mut self,
        query: &[f32],
        k: usize,
    ) -> Option<Stamped<Vec<(VertexId, f32)>>> {
        self.top_k_impl(query, k, ReadMode::Exact).ok()
    }

    /// The unvalidated top-k engine behind [`QueryService::top_k`] and the
    /// deprecated [`QueryService::top_k_by_dot`] shim (which is why, unlike
    /// the public surface, it accepts `k == 0` and returns it empty).
    fn top_k_impl(
        &mut self,
        query: &[f32],
        k: usize,
        mode: ReadMode,
    ) -> crate::Result<Stamped<Vec<(VertexId, f32)>>> {
        let start = Instant::now();
        let no_index = || {
            ServeError::InvalidQuery(
                "approximate top-k against a session serving without an index".to_string(),
            )
        };
        let width_mismatch = |want: usize, got: usize| {
            ServeError::InvalidQuery(format!(
                "query width {got} does not match embedding width {want}"
            ))
        };
        let mut scored: Vec<(f32, u32)>;
        let stamped_parts = match &mut self.topology {
            ServeTopology::Single {
                reader,
                index,
                submitted,
            } => {
                let pending = submitted.load(Ordering::Relaxed);
                let snapshot = Arc::clone(reader.snapshot());
                let store = snapshot.store();
                let table = store.embeddings(store.num_layers());
                if table.cols() != query.len() {
                    return Err(width_mismatch(table.cols(), query.len()));
                }
                scored = match mode {
                    // One pass over the flat table; scored[v] = <h_v, query>.
                    ReadMode::Exact => table
                        .iter_rows()
                        .enumerate()
                        .map(|(v, row)| (dot(row, query), v as u32))
                        .collect(),
                    ReadMode::Approx { nprobe } => {
                        let index = index.as_mut().ok_or_else(no_index)?;
                        // The index may run an epoch ahead of the snapshot
                        // (it is published first); rows it knows that the
                        // snapshot does not are skipped, costing recall only.
                        // Gather in cluster-grouped order as returned — the
                        // final (score desc, id asc) selection is a total
                        // order over unique ids, so input order is free.
                        index
                            .index()
                            .candidates(query, nprobe)
                            .into_iter()
                            .filter(|&v| (v as usize) < table.rows())
                            .map(|v| (dot(table.row(v as usize), query), v))
                            .collect()
                    }
                };
                (
                    snapshot.epoch(),
                    snapshot.applied_seq(),
                    pending.saturating_sub(snapshot.applied_seq()),
                    snapshot.topology_epoch(),
                    None,
                )
            }
            ServeTopology::Sharded {
                readers,
                indexes,
                submitted,
                secondary_submitted,
                partitioning,
            } => {
                let snapshots: Vec<Arc<EpochSnapshot>> = readers
                    .iter_mut()
                    .map(|r| Arc::clone(r.snapshot()))
                    .collect();
                let num_layers = snapshots[0].store().num_layers();
                let width = snapshots[0].store().embeddings(num_layers).cols();
                if width != query.len() {
                    return Err(width_mismatch(width, query.len()));
                }
                scored = match mode {
                    // Score each vertex against its owning shard's snapshot
                    // — only the owner's rows are authoritative.
                    ReadMode::Exact => partitioning
                        .assignment()
                        .iter()
                        .enumerate()
                        .map(|(v, part)| {
                            let row = snapshots[part.index()]
                                .store()
                                .embedding(num_layers, VertexId(v as u32));
                            (dot(row, query), v as u32)
                        })
                        .collect(),
                    ReadMode::Approx { nprobe } => {
                        let indexes = indexes.as_mut().ok_or_else(no_index)?;
                        // Each shard's index covers exactly its owned rows,
                        // so the merged candidate set is duplicate-free and
                        // scoring stays owner-authoritative.
                        let mut merged = Vec::new();
                        for (snapshot, index) in snapshots.iter().zip(indexes.iter_mut()) {
                            let table = snapshot.store().embeddings(num_layers);
                            merged.extend(
                                index
                                    .index()
                                    .candidates(query, nprobe)
                                    .into_iter()
                                    .filter(|&v| (v as usize) < table.rows())
                                    .map(|v| (dot(table.row(v as usize), query), v)),
                            );
                        }
                        merged
                    }
                };
                let epochs: Vec<u64> = snapshots.iter().map(|s| s.epoch()).collect();
                let applied: u64 = snapshots.iter().map(|s| s.applied_seq()).sum();
                // Dedup the merged backlog: an edge update owned by two
                // shards is pending at both, but it is one logical update —
                // subtract the pending *secondary* deliveries per shard.
                let staleness: u64 = snapshots
                    .iter()
                    .zip(submitted.iter().zip(secondary_submitted.iter()))
                    .map(|(s, (sub, sec))| {
                        let pending = sub.load(Ordering::Relaxed).saturating_sub(s.applied_seq());
                        let pending_secondary = sec
                            .load(Ordering::Relaxed)
                            .saturating_sub(s.applied_secondary());
                        pending.saturating_sub(pending_secondary)
                    })
                    .sum();
                let topology_epoch = snapshots
                    .iter()
                    .map(|s| s.topology_epoch())
                    .min()
                    .unwrap_or(0);
                (
                    epochs.iter().copied().min().unwrap_or(0),
                    applied,
                    staleness,
                    topology_epoch,
                    Some(epochs),
                )
            }
        };
        let k = k.min(scored.len());
        // Highest score first, smaller id on ties; NaN-free inputs are the
        // caller's contract — total_cmp keeps the order deterministic anyway.
        // Partial selection: O(candidates + k log k) instead of sorting all.
        let order = |a: &(f32, u32), b: &(f32, u32)| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1));
        if k < scored.len() {
            if k > 0 {
                scored.select_nth_unstable_by(k - 1, order);
            }
            scored.truncate(k);
        }
        scored.sort_unstable_by(order);
        let value = scored
            .into_iter()
            .map(|(score, v)| (VertexId(v), score))
            .collect();
        let (epoch, applied_seq, staleness, topology_epoch, epochs) = stamped_parts;
        let stamped = Stamped {
            value,
            epoch,
            applied_seq,
            staleness,
            topology_epoch,
            shard: None,
            epochs,
        };
        self.metrics.record_read(start.elapsed());
        Ok(stamped)
    }
}

fn dot(row: &[f32], query: &[f32]) -> f32 {
    row.iter().zip(query.iter()).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexMaintainer, IndexParams};
    use crate::versioned::VersionedStore;
    use ripple_gnn::{Aggregator, EmbeddingStore, GnnModel, LayerKind};

    fn service(store: &EmbeddingStore, submitted: u64) -> (QueryService, crate::SnapshotPublisher) {
        let (publisher, reader) = VersionedStore::bootstrap(store);
        let (_maintainer, index) = IndexMaintainer::bootstrap(store, None, IndexParams::default());
        let counter = Arc::new(AtomicU64::new(submitted));
        let metrics = Arc::new(ServeMetrics::new());
        (
            QueryService::new(reader, Some(index), counter, metrics),
            publisher,
        )
    }

    fn store() -> EmbeddingStore {
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 8, 3], 0).unwrap();
        let mut s = EmbeddingStore::zeroed(&model, 4);
        s.set_embedding(2, VertexId(0), &[0.0, 1.0, 0.0]).unwrap();
        s.set_embedding(2, VertexId(1), &[2.0, 0.0, 0.0]).unwrap();
        s.set_embedding(2, VertexId(2), &[1.0, 1.0, 1.0]).unwrap();
        s.set_embedding(2, VertexId(3), &[2.0, 0.0, 0.0]).unwrap();
        s
    }

    #[test]
    fn point_reads_are_stamped_and_reject_unknown_vertices() {
        let (mut q, _publisher) = service(&store(), 7);
        let e = q.read_embedding(VertexId(0)).unwrap();
        assert_eq!(e.value, vec![0.0, 1.0, 0.0]);
        assert_eq!(e.epoch, 0);
        assert_eq!(e.applied_seq, 0);
        assert_eq!(e.staleness, 7, "7 accepted updates not yet visible");
        assert_eq!(e.shard, None);
        assert_eq!(e.epochs, None);
        let l = q.read_label(VertexId(0)).unwrap();
        assert_eq!(l.value, 1);
        assert_eq!(q.epoch(), 0);
        assert_eq!(q.epoch_vector(), vec![0]);
        // Out-of-range vertices are a typed error, not a panic.
        assert!(matches!(
            q.read_embedding(VertexId(99)),
            Err(ServeError::UnknownVertex(VertexId(99)))
        ));
        assert!(matches!(
            q.read_label(VertexId(99)),
            Err(ServeError::UnknownVertex(VertexId(99)))
        ));
    }

    #[test]
    fn top_k_ranks_by_dot_product_with_deterministic_ties() {
        let (mut q, _publisher) = service(&store(), 0);
        let top = q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 3)).unwrap();
        assert_eq!(top.value.len(), 3);
        // Vertices 1 and 3 tie at 2.0; the smaller id wins.
        assert_eq!(top.value[0], (VertexId(1), 2.0));
        assert_eq!(top.value[1], (VertexId(3), 2.0));
        assert_eq!(top.value[2], (VertexId(2), 1.0));
        // k larger than |V| clamps.
        let all = q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 10)).unwrap();
        assert_eq!(all.value.len(), 4);
    }

    #[test]
    fn malformed_requests_fail_with_invalid_query() {
        let (mut q, _publisher) = service(&store(), 0);
        assert!(matches!(
            q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 0)),
            Err(ServeError::InvalidQuery(_))
        ));
        assert!(matches!(
            q.top_k(&TopKRequest::new(vec![1.0, 0.0], 2)),
            Err(ServeError::InvalidQuery(_))
        ));
        assert!(matches!(
            q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 2).approx(0)),
            Err(ServeError::InvalidQuery(_))
        ));
        // Approximate reads against an index-less session are rejected too.
        let (publisher, reader) = VersionedStore::bootstrap(&store());
        let mut bare = QueryService::new(
            reader,
            None,
            Arc::new(AtomicU64::new(0)),
            Arc::new(ServeMetrics::new()),
        );
        assert!(matches!(
            bare.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 2).approx(1)),
            Err(ServeError::InvalidQuery(_))
        ));
        drop(publisher);
    }

    #[test]
    fn full_probe_approx_matches_exact_with_identical_scores() {
        let (mut q, _publisher) = service(&store(), 0);
        let request = TopKRequest::new(vec![0.3, -1.0, 0.7], 4);
        let exact = q.top_k(&request).unwrap();
        let approx = q.top_k(&request.clone().approx(usize::MAX)).unwrap();
        assert_eq!(exact.value, approx.value);
        assert_eq!(exact.epoch, approx.epoch);
    }

    #[test]
    fn min_epoch_floors_fail_as_stale_until_published() {
        let base = store();
        let (mut q, mut publisher) = service(&base, 1);
        let request = TopKRequest::new(vec![1.0, 0.0, 0.0], 2).min_epoch(1);
        assert!(matches!(
            q.top_k(&request),
            Err(ServeError::StaleRead { floor: 1, epoch: 0 })
        ));
        publisher.publish(&base, 1, 0);
        let top = q.top_k(&request).unwrap();
        assert_eq!(top.epoch, 1);
    }

    #[test]
    fn deprecated_shims_still_answer_reads() {
        // The pre-redesign surface must keep working for one deprecation
        // cycle; it delegates to the new internals.
        #[allow(deprecated)]
        {
            let (mut q, _publisher) = service(&store(), 0);
            assert_eq!(q.embedding(VertexId(0)).unwrap().value, vec![0.0, 1.0, 0.0]);
            assert!(q.embedding(VertexId(99)).is_none());
            assert_eq!(q.predicted_label(VertexId(0)).unwrap().value, 1);
            let top = q.top_k_by_dot(&[1.0, 0.0, 0.0], 3).unwrap();
            assert_eq!(top.value[0], (VertexId(1), 2.0));
            // The shim keeps the old lenient edges: k = 0 is an empty hit,
            // a mismatched width is None.
            assert!(q
                .top_k_by_dot(&[1.0, 0.0, 0.0], 0)
                .unwrap()
                .value
                .is_empty());
            assert!(q.top_k_by_dot(&[1.0, 0.0], 2).is_none());
        }
    }

    #[test]
    fn queries_follow_published_epochs() {
        let base = store();
        let (mut q, mut publisher) = service(&base, 3);
        let mut updated = base.clone();
        updated
            .set_embedding(2, VertexId(0), &[9.0, 0.0, 0.0])
            .unwrap();
        publisher.publish(&updated, 3, 2);
        let e = q.read_embedding(VertexId(0)).unwrap();
        assert_eq!(e.epoch, 1);
        assert_eq!(e.applied_seq, 3);
        assert_eq!(e.staleness, 0);
        assert_eq!(e.topology_epoch, 2);
        assert_eq!(e.value[0], 9.0);
        let l = q.read_label(VertexId(0)).unwrap();
        assert_eq!(l.value, 0);
    }

    #[test]
    fn map_preserves_the_stamp() {
        let stamped = Stamped {
            value: vec![1.0f32, 2.0],
            epoch: 4,
            applied_seq: 9,
            staleness: 1,
            topology_epoch: 3,
            shard: Some(PartitionId(1)),
            epochs: Some(vec![4, 6]),
        };
        let len = stamped.map(|v| v.len());
        assert_eq!(len.value, 2);
        assert_eq!(len.epoch, 4);
        assert_eq!(len.applied_seq, 9);
        assert_eq!(len.staleness, 1);
        assert_eq!(len.topology_epoch, 3);
        assert_eq!(len.shard, Some(PartitionId(1)));
        assert_eq!(len.epochs, Some(vec![4, 6]));
    }

    /// A two-shard harness over [`store`]: shard 0 owns vertices 0–1,
    /// shard 1 owns 2–3.
    fn sharded_service(
        submitted: [u64; 2],
        secondary: [u64; 2],
    ) -> (
        QueryService,
        crate::SnapshotPublisher,
        crate::SnapshotPublisher,
    ) {
        let base = store();
        let (publisher0, reader0) = VersionedStore::bootstrap(&base);
        let (publisher1, reader1) = VersionedStore::bootstrap(&base);
        let assignment = vec![
            PartitionId(0),
            PartitionId(0),
            PartitionId(1),
            PartitionId(1),
        ];
        let partitioning = Arc::new(Partitioning::from_assignment(assignment.clone(), 2).unwrap());
        let indexes = (0..2)
            .map(|p| {
                let owned: Vec<bool> = assignment.iter().map(|a| a.index() == p).collect();
                IndexMaintainer::bootstrap(&base, Some(owned), IndexParams::default()).1
            })
            .collect();
        let q = QueryService::new_sharded(
            vec![reader0, reader1],
            Some(indexes),
            submitted
                .iter()
                .map(|&s| Arc::new(AtomicU64::new(s)))
                .collect(),
            secondary
                .iter()
                .map(|&s| Arc::new(AtomicU64::new(s)))
                .collect(),
            partitioning,
            Arc::new(ServeMetrics::new()),
        );
        (q, publisher0, publisher1)
    }

    #[test]
    fn sharded_reads_resolve_the_owning_shard_and_merge_epoch_vectors() {
        // Each shard's store is authoritative only for its owned rows.
        let (mut q, mut publisher0, publisher1) = sharded_service([5, 2], [0, 0]);

        // Shard 0 publishes twice; shard 1 stays at its bootstrap epoch.
        let mut updated = store();
        updated
            .set_embedding(2, VertexId(0), &[9.0, 0.0, 0.0])
            .unwrap();
        publisher0.publish(&updated, 3, 1);
        publisher0.publish(&updated, 5, 2);

        let e = q.read_embedding(VertexId(0)).unwrap();
        assert_eq!(e.value[0], 9.0);
        assert_eq!(e.shard, Some(PartitionId(0)));
        assert_eq!(e.epoch, 2, "point reads use the owning shard's epoch");
        assert_eq!(e.staleness, 0);
        let e = q.read_embedding(VertexId(2)).unwrap();
        assert_eq!(e.shard, Some(PartitionId(1)));
        assert_eq!(e.epoch, 0);
        assert_eq!(e.staleness, 2, "shard 1 has 2 accepted updates pending");
        // Out of the partitioned id space: a typed error, not a panic.
        assert!(matches!(
            q.read_embedding(VertexId(99)),
            Err(ServeError::UnknownVertex(VertexId(99)))
        ));

        // The session epoch is the slowest shard; the vector shows both.
        assert_eq!(q.epoch(), 0);
        assert_eq!(q.epoch_vector(), vec![2, 0]);

        // Whole-graph reads score every vertex from its owner and stamp the
        // epoch vector (vertex 0's new value comes from shard 0's epoch 2).
        let top = q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 1)).unwrap();
        assert_eq!(top.value[0], (VertexId(0), 9.0));
        assert_eq!(top.epoch, 0);
        assert_eq!(top.epochs, Some(vec![2, 0]));
        assert_eq!(top.shard, None);
        assert_eq!(top.applied_seq, 5, "applied sums across shards");
        assert_eq!(top.staleness, 2, "per-shard backlogs sum");

        // A floor neither shard reached is stale; the reached one is not.
        assert!(matches!(
            q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 1).min_epoch(1)),
            Err(ServeError::StaleRead { floor: 1, epoch: 0 })
        ));
        drop(publisher1);
    }

    #[test]
    fn merged_staleness_counts_cross_shard_updates_once() {
        // One logical edge update fanned out to both owners: each shard's
        // counter sees one pending update (shard 1's marked secondary), but
        // the merged read must report ONE not-yet-visible update, not two.
        let (mut q, publisher0, publisher1) = sharded_service([1, 1], [0, 1]);
        let top = q.top_k(&TopKRequest::new(vec![1.0, 0.0, 0.0], 1)).unwrap();
        assert_eq!(
            top.staleness, 1,
            "duplicate secondary delivery must not double-count"
        );
        drop((publisher0, publisher1));
    }

    #[test]
    fn sharded_full_probe_approx_merges_owner_candidates_exactly() {
        let (mut q, publisher0, publisher1) = sharded_service([0, 0], [0, 0]);
        let request = TopKRequest::new(vec![0.5, 0.5, -0.25], 4);
        let exact = q.top_k(&request).unwrap();
        let approx = q.top_k(&request.clone().approx(usize::MAX)).unwrap();
        assert_eq!(exact.value, approx.value);
        drop((publisher0, publisher1));
    }
}
