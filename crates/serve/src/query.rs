//! Read-side query API over published epoch snapshots.
//!
//! A [`QueryService`] is a per-thread handle: it owns cached
//! [`SnapshotReader`]s, so the hot path of every query is one atomic epoch
//! check plus reads against an immutable snapshot — no locks shared with the
//! engine, no blocking on in-flight propagation. Every response is stamped
//! with the epoch it was served at and the **staleness** at read time: how
//! many accepted updates were not yet visible in that epoch.
//!
//! # Sharded sessions
//!
//! Against a sharded session ([`crate::spawn_sharded`]) the service owns one
//! reader per shard and epochs form a **vector clock**: each shard publishes
//! its own epoch sequence. A point read resolves the owning shard from the
//! partitioning and is stamped with that shard's scalar epoch (plus
//! [`Stamped::shard`]); a whole-graph read such as
//! [`QueryService::top_k_by_dot`] touches every shard and is stamped with
//! the *minimum* epoch across shards plus the full per-shard vector in
//! [`Stamped::epochs`]. Staleness for whole-graph reads sums the per-shard
//! backlogs.

use crate::metrics::ServeMetrics;
use crate::versioned::{EpochSnapshot, SnapshotReader};
use ripple_graph::partition::Partitioning;
use ripple_graph::{PartitionId, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A query response together with its consistency stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The response payload.
    pub value: T,
    /// Epoch of the snapshot that served this query. For a sharded
    /// whole-graph read this is the minimum epoch across the shards read.
    pub epoch: u64,
    /// Accepted raw updates reflected in that snapshot (summed across
    /// shards for a sharded whole-graph read).
    pub applied_seq: u64,
    /// Accepted updates not yet visible at read time (enqueued − applied;
    /// summed across shards for a sharded whole-graph read).
    pub staleness: u64,
    /// The engine's topology epoch (update batches absorbed by its CSR
    /// topology snapshot) behind the serving snapshot — lets callers see
    /// how fresh the *structure* behind the answer is, independently of the
    /// embedding epoch. Minimum across shards for a whole-graph read.
    pub topology_epoch: u64,
    /// The shard that served a point read against a sharded session;
    /// `None` for single-engine sessions and for whole-graph reads.
    pub shard: Option<PartitionId>,
    /// The per-shard epoch vector of a whole-graph read against a sharded
    /// session (`epochs[p]` is shard `p`'s epoch at read time); `None` for
    /// single-engine sessions and point reads.
    pub epochs: Option<Vec<u64>>,
}

impl<T> Stamped<T> {
    /// Maps the payload, keeping the stamp.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Stamped<U> {
        Stamped {
            value: f(self.value),
            epoch: self.epoch,
            applied_seq: self.applied_seq,
            staleness: self.staleness,
            topology_epoch: self.topology_epoch,
            shard: self.shard,
            epochs: self.epochs,
        }
    }
}

fn stamp<T>(
    value: T,
    snap: &EpochSnapshot,
    submitted: u64,
    shard: Option<PartitionId>,
) -> Stamped<T> {
    Stamped {
        value,
        epoch: snap.epoch(),
        applied_seq: snap.applied_seq(),
        staleness: submitted.saturating_sub(snap.applied_seq()),
        topology_epoch: snap.topology_epoch(),
        shard,
        epochs: None,
    }
}

/// Which serving topology a [`QueryService`] reads from: one engine behind
/// one publisher, or one publisher per shard.
#[derive(Debug, Clone)]
enum ServeTopology {
    Single {
        reader: SnapshotReader,
        submitted: Arc<AtomicU64>,
    },
    Sharded {
        /// One reader per shard, indexed by [`PartitionId`].
        readers: Vec<SnapshotReader>,
        /// Per-shard accepted-update counters, indexed like `readers`.
        submitted: Vec<Arc<AtomicU64>>,
        partitioning: Arc<Partitioning>,
    },
}

/// Per-thread query handle over the latest published snapshot(s).
#[derive(Debug, Clone)]
pub struct QueryService {
    topology: ServeTopology,
    metrics: Arc<ServeMetrics>,
}

impl QueryService {
    pub(crate) fn new(
        reader: SnapshotReader,
        submitted: Arc<AtomicU64>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        QueryService {
            topology: ServeTopology::Single { reader, submitted },
            metrics,
        }
    }

    pub(crate) fn new_sharded(
        readers: Vec<SnapshotReader>,
        submitted: Vec<Arc<AtomicU64>>,
        partitioning: Arc<Partitioning>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        debug_assert_eq!(readers.len(), submitted.len());
        QueryService {
            topology: ServeTopology::Sharded {
                readers,
                submitted,
                partitioning,
            },
            metrics,
        }
    }

    /// The owning shard's snapshot, submitted counter and id for `v`;
    /// `None` if `v` is outside the partitioned id space.
    fn point_view(
        &mut self,
        v: VertexId,
    ) -> Option<(Arc<EpochSnapshot>, u64, Option<PartitionId>)> {
        match &mut self.topology {
            ServeTopology::Single { reader, submitted } => {
                let pending = submitted.load(Ordering::Relaxed);
                Some((Arc::clone(reader.snapshot()), pending, None))
            }
            ServeTopology::Sharded {
                readers,
                submitted,
                partitioning,
            } => {
                let part = *partitioning.assignment().get(v.index())?;
                let pending = submitted[part.index()].load(Ordering::Relaxed);
                Some((
                    Arc::clone(readers[part.index()].snapshot()),
                    pending,
                    Some(part),
                ))
            }
        }
    }

    /// The epoch this handle currently serves (refreshing first). For a
    /// sharded session this is the minimum epoch across shards — the epoch
    /// every shard has reached.
    pub fn epoch(&mut self) -> u64 {
        match &mut self.topology {
            ServeTopology::Single { reader, .. } => reader.epoch(),
            ServeTopology::Sharded { readers, .. } => readers
                .iter_mut()
                .map(SnapshotReader::epoch)
                .min()
                .unwrap_or(0),
        }
    }

    /// The per-shard epoch vector (refreshing first); a single-engine
    /// session reports one entry.
    pub fn epoch_vector(&mut self) -> Vec<u64> {
        match &mut self.topology {
            ServeTopology::Single { reader, .. } => vec![reader.epoch()],
            ServeTopology::Sharded { readers, .. } => {
                readers.iter_mut().map(SnapshotReader::epoch).collect()
            }
        }
    }

    /// The final-layer embedding of `v`, or `None` if `v` is out of range.
    pub fn embedding(&mut self, v: VertexId) -> Option<Stamped<Vec<f32>>> {
        let start = Instant::now();
        let (snapshot, submitted, shard) = self.point_view(v)?;
        let store = snapshot.store();
        if v.index() >= store.num_vertices() {
            return None;
        }
        let value = store.embedding(store.num_layers(), v).to_vec();
        let stamped = stamp(value, &snapshot, submitted, shard);
        self.metrics.record_read(start.elapsed());
        Some(stamped)
    }

    /// The predicted class label of `v` (argmax of its final-layer
    /// embedding), or `None` if `v` is out of range.
    pub fn predicted_label(&mut self, v: VertexId) -> Option<Stamped<usize>> {
        let start = Instant::now();
        let (snapshot, submitted, shard) = self.point_view(v)?;
        let store = snapshot.store();
        if v.index() >= store.num_vertices() {
            return None;
        }
        let stamped = stamp(store.predicted_label(v), &snapshot, submitted, shard);
        self.metrics.record_read(start.elapsed());
        Some(stamped)
    }

    /// The `k` vertices whose final-layer embeddings have the largest dot
    /// product with `query` — the batched similarity lookup of a
    /// recommendation read path. Ties break towards the smaller vertex id,
    /// so results are deterministic. Returns `None` if `query`'s width does
    /// not match the embedding width.
    ///
    /// Against a sharded session every vertex is scored from its owning
    /// shard's snapshot, and the stamp carries the per-shard epoch vector
    /// ([`Stamped::epochs`]) with [`Stamped::epoch`] set to its minimum.
    pub fn top_k_by_dot(
        &mut self,
        query: &[f32],
        k: usize,
    ) -> Option<Stamped<Vec<(VertexId, f32)>>> {
        let start = Instant::now();
        let mut scored: Vec<(f32, u32)>;
        let stamped_parts = match &mut self.topology {
            ServeTopology::Single { reader, submitted } => {
                let pending = submitted.load(Ordering::Relaxed);
                let snapshot = Arc::clone(reader.snapshot());
                let store = snapshot.store();
                let table = store.embeddings(store.num_layers());
                if table.cols() != query.len() {
                    return None;
                }
                // One pass over the flat table; scored[(v)] = <h_v, query>.
                scored = table
                    .iter_rows()
                    .enumerate()
                    .map(|(v, row)| (dot(row, query), v as u32))
                    .collect();
                (
                    snapshot.epoch(),
                    snapshot.applied_seq(),
                    pending.saturating_sub(snapshot.applied_seq()),
                    snapshot.topology_epoch(),
                    None,
                )
            }
            ServeTopology::Sharded {
                readers,
                submitted,
                partitioning,
            } => {
                let snapshots: Vec<Arc<EpochSnapshot>> = readers
                    .iter_mut()
                    .map(|r| Arc::clone(r.snapshot()))
                    .collect();
                let num_layers = snapshots[0].store().num_layers();
                if snapshots[0].store().embeddings(num_layers).cols() != query.len() {
                    return None;
                }
                // Score each vertex against its owning shard's snapshot —
                // only the owner's rows are authoritative.
                scored = partitioning
                    .assignment()
                    .iter()
                    .enumerate()
                    .map(|(v, part)| {
                        let row = snapshots[part.index()]
                            .store()
                            .embedding(num_layers, VertexId(v as u32));
                        (dot(row, query), v as u32)
                    })
                    .collect();
                let epochs: Vec<u64> = snapshots.iter().map(|s| s.epoch()).collect();
                let applied: u64 = snapshots.iter().map(|s| s.applied_seq()).sum();
                let staleness: u64 = snapshots
                    .iter()
                    .zip(submitted.iter())
                    .map(|(s, counter)| {
                        counter
                            .load(Ordering::Relaxed)
                            .saturating_sub(s.applied_seq())
                    })
                    .sum();
                let topology_epoch = snapshots
                    .iter()
                    .map(|s| s.topology_epoch())
                    .min()
                    .unwrap_or(0);
                (
                    epochs.iter().copied().min().unwrap_or(0),
                    applied,
                    staleness,
                    topology_epoch,
                    Some(epochs),
                )
            }
        };
        let k = k.min(scored.len());
        // Highest score first, smaller id on ties; NaN-free inputs are the
        // caller's contract — total_cmp keeps the order deterministic anyway.
        // Partial selection: O(|V| + k log k) instead of sorting all |V|.
        let order = |a: &(f32, u32), b: &(f32, u32)| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1));
        if k < scored.len() {
            if k > 0 {
                scored.select_nth_unstable_by(k - 1, order);
            }
            scored.truncate(k);
        }
        scored.sort_unstable_by(order);
        let value = scored
            .into_iter()
            .map(|(score, v)| (VertexId(v), score))
            .collect();
        let (epoch, applied_seq, staleness, topology_epoch, epochs) = stamped_parts;
        let stamped = Stamped {
            value,
            epoch,
            applied_seq,
            staleness,
            topology_epoch,
            shard: None,
            epochs,
        };
        self.metrics.record_read(start.elapsed());
        Some(stamped)
    }
}

fn dot(row: &[f32], query: &[f32]) -> f32 {
    row.iter().zip(query.iter()).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versioned::VersionedStore;
    use ripple_gnn::{Aggregator, EmbeddingStore, GnnModel, LayerKind};

    fn service(store: &EmbeddingStore, submitted: u64) -> (QueryService, crate::SnapshotPublisher) {
        let (publisher, reader) = VersionedStore::bootstrap(store);
        let counter = Arc::new(AtomicU64::new(submitted));
        let metrics = Arc::new(ServeMetrics::new());
        (QueryService::new(reader, counter, metrics), publisher)
    }

    fn store() -> EmbeddingStore {
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 8, 3], 0).unwrap();
        let mut s = EmbeddingStore::zeroed(&model, 4);
        s.set_embedding(2, VertexId(0), &[0.0, 1.0, 0.0]).unwrap();
        s.set_embedding(2, VertexId(1), &[2.0, 0.0, 0.0]).unwrap();
        s.set_embedding(2, VertexId(2), &[1.0, 1.0, 1.0]).unwrap();
        s.set_embedding(2, VertexId(3), &[2.0, 0.0, 0.0]).unwrap();
        s
    }

    #[test]
    fn embedding_and_label_are_stamped() {
        let (mut q, _publisher) = service(&store(), 7);
        let e = q.embedding(VertexId(0)).unwrap();
        assert_eq!(e.value, vec![0.0, 1.0, 0.0]);
        assert_eq!(e.epoch, 0);
        assert_eq!(e.applied_seq, 0);
        assert_eq!(e.staleness, 7, "7 accepted updates not yet visible");
        assert_eq!(e.shard, None);
        assert_eq!(e.epochs, None);
        let l = q.predicted_label(VertexId(0)).unwrap();
        assert_eq!(l.value, 1);
        assert_eq!(q.epoch(), 0);
        assert_eq!(q.epoch_vector(), vec![0]);
        // Out-of-range vertices are rejected, not panicking.
        assert!(q.embedding(VertexId(99)).is_none());
        assert!(q.predicted_label(VertexId(99)).is_none());
    }

    #[test]
    fn top_k_ranks_by_dot_product_with_deterministic_ties() {
        let (mut q, _publisher) = service(&store(), 0);
        let top = q.top_k_by_dot(&[1.0, 0.0, 0.0], 3).unwrap();
        assert_eq!(top.value.len(), 3);
        // Vertices 1 and 3 tie at 2.0; the smaller id wins.
        assert_eq!(top.value[0], (VertexId(1), 2.0));
        assert_eq!(top.value[1], (VertexId(3), 2.0));
        assert_eq!(top.value[2], (VertexId(2), 1.0));
        // k larger than |V| clamps, k = 0 is empty; mismatched width is
        // rejected.
        assert_eq!(q.top_k_by_dot(&[1.0, 0.0, 0.0], 10).unwrap().value.len(), 4);
        assert!(q
            .top_k_by_dot(&[1.0, 0.0, 0.0], 0)
            .unwrap()
            .value
            .is_empty());
        assert!(q.top_k_by_dot(&[1.0, 0.0], 2).is_none());
    }

    #[test]
    fn queries_follow_published_epochs() {
        let base = store();
        let (mut q, mut publisher) = service(&base, 3);
        let mut updated = base.clone();
        updated
            .set_embedding(2, VertexId(0), &[9.0, 0.0, 0.0])
            .unwrap();
        publisher.publish(&updated, 3, 2);
        let e = q.embedding(VertexId(0)).unwrap();
        assert_eq!(e.epoch, 1);
        assert_eq!(e.applied_seq, 3);
        assert_eq!(e.staleness, 0);
        assert_eq!(e.topology_epoch, 2);
        assert_eq!(e.value[0], 9.0);
        let l = q.predicted_label(VertexId(0)).unwrap();
        assert_eq!(l.value, 0);
    }

    #[test]
    fn map_preserves_the_stamp() {
        let stamped = Stamped {
            value: vec![1.0f32, 2.0],
            epoch: 4,
            applied_seq: 9,
            staleness: 1,
            topology_epoch: 3,
            shard: Some(PartitionId(1)),
            epochs: Some(vec![4, 6]),
        };
        let len = stamped.map(|v| v.len());
        assert_eq!(len.value, 2);
        assert_eq!(len.epoch, 4);
        assert_eq!(len.applied_seq, 9);
        assert_eq!(len.staleness, 1);
        assert_eq!(len.topology_epoch, 3);
        assert_eq!(len.shard, Some(PartitionId(1)));
        assert_eq!(len.epochs, Some(vec![4, 6]));
    }

    #[test]
    fn sharded_reads_resolve_the_owning_shard_and_merge_epoch_vectors() {
        // Shard 0 owns vertices 0–1, shard 1 owns 2–3; each shard's store is
        // authoritative only for its owned rows.
        let base = store();
        let (mut publisher0, reader0) = VersionedStore::bootstrap(&base);
        let (publisher1, reader1) = VersionedStore::bootstrap(&base);
        let partitioning = Arc::new(
            Partitioning::from_assignment(
                vec![
                    PartitionId(0),
                    PartitionId(0),
                    PartitionId(1),
                    PartitionId(1),
                ],
                2,
            )
            .unwrap(),
        );
        let submitted = vec![Arc::new(AtomicU64::new(5)), Arc::new(AtomicU64::new(2))];
        let metrics = Arc::new(ServeMetrics::new());
        let mut q = QueryService::new_sharded(
            vec![reader0, reader1],
            submitted,
            Arc::clone(&partitioning),
            Arc::clone(&metrics),
        );

        // Shard 0 publishes twice; shard 1 stays at its bootstrap epoch.
        let mut updated = base.clone();
        updated
            .set_embedding(2, VertexId(0), &[9.0, 0.0, 0.0])
            .unwrap();
        publisher0.publish(&updated, 3, 1);
        publisher0.publish(&updated, 5, 2);

        let e = q.embedding(VertexId(0)).unwrap();
        assert_eq!(e.value[0], 9.0);
        assert_eq!(e.shard, Some(PartitionId(0)));
        assert_eq!(e.epoch, 2, "point reads use the owning shard's epoch");
        assert_eq!(e.staleness, 0);
        let e = q.embedding(VertexId(2)).unwrap();
        assert_eq!(e.shard, Some(PartitionId(1)));
        assert_eq!(e.epoch, 0);
        assert_eq!(e.staleness, 2, "shard 1 has 2 accepted updates pending");
        // Out of the partitioned id space: rejected, not panicking.
        assert!(q.embedding(VertexId(99)).is_none());

        // The session epoch is the slowest shard; the vector shows both.
        assert_eq!(q.epoch(), 0);
        assert_eq!(q.epoch_vector(), vec![2, 0]);

        // Whole-graph reads score every vertex from its owner and stamp the
        // epoch vector (vertex 0's new value comes from shard 0's epoch 2).
        let top = q.top_k_by_dot(&[1.0, 0.0, 0.0], 1).unwrap();
        assert_eq!(top.value[0], (VertexId(0), 9.0));
        assert_eq!(top.epoch, 0);
        assert_eq!(top.epochs, Some(vec![2, 0]));
        assert_eq!(top.shard, None);
        assert_eq!(top.applied_seq, 5, "applied sums across shards");
        assert_eq!(top.staleness, 2, "per-shard backlogs sum");
        drop(publisher1);
    }
}
