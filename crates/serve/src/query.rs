//! Read-side query API over published epoch snapshots.
//!
//! A [`QueryService`] is a per-thread handle: it owns a cached
//! [`SnapshotReader`], so the hot path of every query is one atomic epoch
//! check plus reads against an immutable snapshot — no locks shared with the
//! engine, no blocking on in-flight propagation. Every response is stamped
//! with the epoch it was served at and the **staleness** at read time: how
//! many accepted updates were not yet visible in that epoch.

use crate::metrics::ServeMetrics;
use crate::versioned::SnapshotReader;
use ripple_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A query response together with its consistency stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped<T> {
    /// The response payload.
    pub value: T,
    /// Epoch of the snapshot that served this query.
    pub epoch: u64,
    /// Accepted raw updates reflected in that snapshot.
    pub applied_seq: u64,
    /// Accepted updates not yet visible at read time (enqueued − applied).
    pub staleness: u64,
    /// The engine's topology epoch (update batches absorbed by its CSR
    /// topology snapshot) behind the serving snapshot — lets callers see
    /// how fresh the *structure* behind the answer is, independently of the
    /// embedding epoch.
    pub topology_epoch: u64,
}

impl<T> Stamped<T> {
    /// Maps the payload, keeping the stamp.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Stamped<U> {
        Stamped {
            value: f(self.value),
            epoch: self.epoch,
            applied_seq: self.applied_seq,
            staleness: self.staleness,
            topology_epoch: self.topology_epoch,
        }
    }
}

/// Per-thread query handle over the latest published snapshot.
#[derive(Debug, Clone)]
pub struct QueryService {
    reader: SnapshotReader,
    submitted: Arc<AtomicU64>,
    metrics: Arc<ServeMetrics>,
}

impl QueryService {
    pub(crate) fn new(
        reader: SnapshotReader,
        submitted: Arc<AtomicU64>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        QueryService {
            reader,
            submitted,
            metrics,
        }
    }

    /// The epoch this handle currently serves (refreshing first).
    pub fn epoch(&mut self) -> u64 {
        self.reader.epoch()
    }

    /// The final-layer embedding of `v`, or `None` if `v` is out of range.
    pub fn embedding(&mut self, v: VertexId) -> Option<Stamped<Vec<f32>>> {
        let start = Instant::now();
        let submitted = self.submitted.load(Ordering::Relaxed);
        let snapshot = self.reader.snapshot();
        let store = snapshot.store();
        if v.index() >= store.num_vertices() {
            return None;
        }
        let value = store.embedding(store.num_layers(), v).to_vec();
        let stamped = Stamped {
            value,
            epoch: snapshot.epoch(),
            applied_seq: snapshot.applied_seq(),
            staleness: submitted.saturating_sub(snapshot.applied_seq()),
            topology_epoch: snapshot.topology_epoch(),
        };
        self.metrics.record_read(start.elapsed());
        Some(stamped)
    }

    /// The predicted class label of `v` (argmax of its final-layer
    /// embedding), or `None` if `v` is out of range.
    pub fn predicted_label(&mut self, v: VertexId) -> Option<Stamped<usize>> {
        let start = Instant::now();
        let submitted = self.submitted.load(Ordering::Relaxed);
        let snapshot = self.reader.snapshot();
        let store = snapshot.store();
        if v.index() >= store.num_vertices() {
            return None;
        }
        let stamped = Stamped {
            value: store.predicted_label(v),
            epoch: snapshot.epoch(),
            applied_seq: snapshot.applied_seq(),
            staleness: submitted.saturating_sub(snapshot.applied_seq()),
            topology_epoch: snapshot.topology_epoch(),
        };
        self.metrics.record_read(start.elapsed());
        Some(stamped)
    }

    /// The `k` vertices whose final-layer embeddings have the largest dot
    /// product with `query` — the batched similarity lookup of a
    /// recommendation read path. Ties break towards the smaller vertex id,
    /// so results are deterministic. Returns `None` if `query`'s width does
    /// not match the embedding width.
    pub fn top_k_by_dot(
        &mut self,
        query: &[f32],
        k: usize,
    ) -> Option<Stamped<Vec<(VertexId, f32)>>> {
        let start = Instant::now();
        let submitted = self.submitted.load(Ordering::Relaxed);
        let snapshot = self.reader.snapshot();
        let store = snapshot.store();
        let table = store.embeddings(store.num_layers());
        if table.cols() != query.len() {
            return None;
        }
        // One pass over the flat table; scored[(v)] = <h_v, query>.
        let mut scored: Vec<(f32, u32)> = table
            .iter_rows()
            .enumerate()
            .map(|(v, row)| {
                let dot: f32 = row.iter().zip(query.iter()).map(|(a, b)| a * b).sum();
                (dot, v as u32)
            })
            .collect();
        let k = k.min(scored.len());
        // Highest score first, smaller id on ties; NaN-free inputs are the
        // caller's contract — total_cmp keeps the order deterministic anyway.
        // Partial selection: O(|V| + k log k) instead of sorting all |V|.
        let order = |a: &(f32, u32), b: &(f32, u32)| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1));
        if k < scored.len() {
            if k > 0 {
                scored.select_nth_unstable_by(k - 1, order);
            }
            scored.truncate(k);
        }
        scored.sort_unstable_by(order);
        let value = scored
            .into_iter()
            .map(|(score, v)| (VertexId(v), score))
            .collect();
        let stamped = Stamped {
            value,
            epoch: snapshot.epoch(),
            applied_seq: snapshot.applied_seq(),
            staleness: submitted.saturating_sub(snapshot.applied_seq()),
            topology_epoch: snapshot.topology_epoch(),
        };
        self.metrics.record_read(start.elapsed());
        Some(stamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::versioned::VersionedStore;
    use ripple_gnn::{Aggregator, EmbeddingStore, GnnModel, LayerKind};

    fn service(store: &EmbeddingStore, submitted: u64) -> (QueryService, crate::SnapshotPublisher) {
        let (publisher, reader) = VersionedStore::bootstrap(store);
        let counter = Arc::new(AtomicU64::new(submitted));
        let metrics = Arc::new(ServeMetrics::new());
        (QueryService::new(reader, counter, metrics), publisher)
    }

    fn store() -> EmbeddingStore {
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 8, 3], 0).unwrap();
        let mut s = EmbeddingStore::zeroed(&model, 4);
        s.set_embedding(2, VertexId(0), &[0.0, 1.0, 0.0]).unwrap();
        s.set_embedding(2, VertexId(1), &[2.0, 0.0, 0.0]).unwrap();
        s.set_embedding(2, VertexId(2), &[1.0, 1.0, 1.0]).unwrap();
        s.set_embedding(2, VertexId(3), &[2.0, 0.0, 0.0]).unwrap();
        s
    }

    #[test]
    fn embedding_and_label_are_stamped() {
        let (mut q, _publisher) = service(&store(), 7);
        let e = q.embedding(VertexId(0)).unwrap();
        assert_eq!(e.value, vec![0.0, 1.0, 0.0]);
        assert_eq!(e.epoch, 0);
        assert_eq!(e.applied_seq, 0);
        assert_eq!(e.staleness, 7, "7 accepted updates not yet visible");
        let l = q.predicted_label(VertexId(0)).unwrap();
        assert_eq!(l.value, 1);
        assert_eq!(q.epoch(), 0);
        // Out-of-range vertices are rejected, not panicking.
        assert!(q.embedding(VertexId(99)).is_none());
        assert!(q.predicted_label(VertexId(99)).is_none());
    }

    #[test]
    fn top_k_ranks_by_dot_product_with_deterministic_ties() {
        let (mut q, _publisher) = service(&store(), 0);
        let top = q.top_k_by_dot(&[1.0, 0.0, 0.0], 3).unwrap();
        assert_eq!(top.value.len(), 3);
        // Vertices 1 and 3 tie at 2.0; the smaller id wins.
        assert_eq!(top.value[0], (VertexId(1), 2.0));
        assert_eq!(top.value[1], (VertexId(3), 2.0));
        assert_eq!(top.value[2], (VertexId(2), 1.0));
        // k larger than |V| clamps, k = 0 is empty; mismatched width is
        // rejected.
        assert_eq!(q.top_k_by_dot(&[1.0, 0.0, 0.0], 10).unwrap().value.len(), 4);
        assert!(q
            .top_k_by_dot(&[1.0, 0.0, 0.0], 0)
            .unwrap()
            .value
            .is_empty());
        assert!(q.top_k_by_dot(&[1.0, 0.0], 2).is_none());
    }

    #[test]
    fn queries_follow_published_epochs() {
        let base = store();
        let (mut q, mut publisher) = service(&base, 3);
        let mut updated = base.clone();
        updated
            .set_embedding(2, VertexId(0), &[9.0, 0.0, 0.0])
            .unwrap();
        publisher.publish(&updated, 3, 2);
        let e = q.embedding(VertexId(0)).unwrap();
        assert_eq!(e.epoch, 1);
        assert_eq!(e.applied_seq, 3);
        assert_eq!(e.staleness, 0);
        assert_eq!(e.topology_epoch, 2);
        assert_eq!(e.value[0], 9.0);
        let l = q.predicted_label(VertexId(0)).unwrap();
        assert_eq!(l.value, 0);
    }

    #[test]
    fn map_preserves_the_stamp() {
        let stamped = Stamped {
            value: vec![1.0f32, 2.0],
            epoch: 4,
            applied_seq: 9,
            staleness: 1,
            topology_epoch: 3,
        };
        let len = stamped.map(|v| v.len());
        assert_eq!(len.value, 2);
        assert_eq!(len.epoch, 4);
        assert_eq!(len.applied_seq, 9);
        assert_eq!(len.staleness, 1);
        assert_eq!(len.topology_epoch, 3);
    }
}
