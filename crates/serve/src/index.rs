//! Epoch-versioned IVF similarity index over final-layer embeddings.
//!
//! [`QueryService::top_k`](crate::QueryService::top_k) in
//! [`ReadMode::Exact`](crate::ReadMode::Exact) scans the whole final-layer
//! table — O(|V|·D) per read. This module provides the sublinear
//! alternative behind [`ReadMode::Approx`](crate::ReadMode::Approx): a
//! classic inverted-file (IVF) layout with coarse k-means centroids and one
//! postings list per cluster. A query ranks the centroids by dot product,
//! probes the `nprobe` best clusters and scores only their members — the
//! scores themselves always come from the published store snapshot, so every
//! returned `(vertex, score)` is bit-identical to what the exact scan would
//! report for that vertex; only *recall* is approximate.
//!
//! # Publication
//!
//! The index is published exactly like the store: an [`Arc`] swap behind an
//! atomic epoch mirror ([`VersionedIndex`]), one writer
//! ([`IndexMaintainer`], owned by the scheduler thread) and lock-free
//! readers ([`IndexReader`]). Each flush the maintainer consumes the same
//! dirty-row set the [`crate::versioned::SnapshotPublisher`] gets and
//! **repairs** only the touched postings: moved rows are reassigned to their
//! nearest centroid, vanished rows are tombstoned, and clusters drifting
//! past the imbalance threshold are lazily split or merged. The maintainer
//! double-buffers like the snapshot publisher — the index retired two epochs
//! ago is reclaimed via [`Arc::try_unwrap`] and repaired with the union of
//! the last two dirty sets, so steady-state publication is O(affected), not
//! O(|V|). [`IndexStats`] counts repairs vs. full rebuilds to prove the
//! incrementality.
//!
//! # Determinism
//!
//! Centroids are seeded and refined with the workspace's deterministic
//! `rand` shim and stay **fixed** after the bootstrap build (splits add a
//! deterministically chosen member row; merges remove a centroid). The
//! assignment is always the pure function *nearest centroid by L2 distance,
//! ties to the lower cluster index* — which is what makes incremental
//! repair reproducible: repairing N epochs of dirty rows yields bit-for-bit
//! the same index as rebuilding from the final store under the same
//! centroids (pinned by `tests/topk_index.rs`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ripple_gnn::EmbeddingStore;
use ripple_graph::VertexId;
use ripple_tensor::{ops::row_matmul_into, Matrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel assignment for rows that are not indexed: beyond the store,
/// deleted, or owned by another shard.
const TOMBSTONE: u32 = u32::MAX;

/// Tuning knobs of the IVF index, carried inside
/// [`crate::ServeConfig::index`].
///
/// The defaults are sized for the serving workloads in this repo; all knobs
/// are validated by [`crate::ServeConfigBuilder::index`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// Number of coarse clusters; `0` picks `√|V|` (clamped to `[1, 4096]`)
    /// at build time.
    pub clusters: usize,
    /// Lloyd refinement iterations of the bootstrap k-means build.
    pub kmeans_iters: usize,
    /// Seed of the deterministic centroid initialisation.
    pub seed: u64,
    /// Imbalance threshold: a cluster larger than `split_factor ×` the mean
    /// cluster size is lazily split; one smaller than `mean /
    /// split_factor` is lazily merged away. Must be `> 1.0`.
    pub split_factor: f64,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            clusters: 0,
            kmeans_iters: 4,
            seed: 0x05ee_d1df,
            split_factor: 4.0,
        }
    }
}

impl IndexParams {
    /// The cluster count used for a table of `rows` indexed rows: the
    /// configured count, or `round(sqrt(rows))` when left at 0 (auto),
    /// clamped to `[1, 4096]` and never above `rows`.
    pub fn effective_clusters(&self, rows: usize) -> usize {
        let auto = if self.clusters > 0 {
            self.clusters
        } else {
            (rows as f64).sqrt().round() as usize
        };
        auto.clamp(1, 4096).min(rows.max(1))
    }
}

/// Point-in-time counters of one shard's [`IndexMaintainer`], proving that
/// steady-state epochs repair instead of rebuilding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Full k-means builds (the bootstrap build; stays at 1 per shard in
    /// steady state).
    pub builds: u64,
    /// Full k-means **re**builds after bootstrap (dimension changes only —
    /// zero in steady state, asserted by the bench).
    pub rebuilds: u64,
    /// Publications that repaired the index incrementally.
    pub repairs: u64,
    /// Rows re-examined by incremental repairs.
    pub rows_repaired: u64,
    /// Repaired rows that actually changed cluster (or were tombstoned).
    pub rows_moved: u64,
    /// Lazy cluster splits (imbalance above threshold).
    pub splits: u64,
    /// Lazy cluster merges (underfull or empty clusters).
    pub merges: u64,
    /// Publications that reclaimed the retired double buffer.
    pub buffer_reuses: u64,
    /// Publications that fell back to cloning the live index (warm-up, a
    /// slow reader, or a structural change in the last two epochs).
    pub clone_fallbacks: u64,
}

impl IndexStats {
    /// Element-wise sum — used to aggregate per-shard stats.
    pub fn merged(self, other: IndexStats) -> IndexStats {
        IndexStats {
            builds: self.builds + other.builds,
            rebuilds: self.rebuilds + other.rebuilds,
            repairs: self.repairs + other.repairs,
            rows_repaired: self.rows_repaired + other.rows_repaired,
            rows_moved: self.rows_moved + other.rows_moved,
            splits: self.splits + other.splits,
            merges: self.merges + other.merges,
            buffer_reuses: self.buffer_reuses + other.buffer_reuses,
            clone_fallbacks: self.clone_fallbacks + other.clone_fallbacks,
        }
    }
}

/// Lock-free shared counters behind [`IndexStats`]; the maintainer writes
/// from the scheduler thread, session handles snapshot from anywhere.
#[derive(Debug, Default)]
pub struct SharedIndexStats {
    builds: AtomicU64,
    rebuilds: AtomicU64,
    repairs: AtomicU64,
    rows_repaired: AtomicU64,
    rows_moved: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    buffer_reuses: AtomicU64,
    clone_fallbacks: AtomicU64,
}

impl SharedIndexStats {
    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> IndexStats {
        IndexStats {
            builds: self.builds.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            rows_repaired: self.rows_repaired.load(Ordering::Relaxed),
            rows_moved: self.rows_moved.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            buffer_reuses: self.buffer_reuses.load(Ordering::Relaxed),
            clone_fallbacks: self.clone_fallbacks.load(Ordering::Relaxed),
        }
    }

    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// One published, immutable IVF index over a store's final layer.
///
/// Readers obtain it through [`IndexReader::index`] and use
/// [`TopKIndex::candidates`] to turn a query vector into the member set of
/// its `nprobe` best clusters; scoring happens against the store snapshot,
/// never against index state.
#[derive(Debug, Clone)]
pub struct TopKIndex {
    /// Epoch this index was published at; advances in lockstep with the
    /// store epochs of the same scheduler.
    epoch: u64,
    /// Bumped by every structural change (split / merge / rebuild); a
    /// retired buffer from before a structural change cannot be
    /// dirty-repaired and is discarded instead.
    structure_epoch: u64,
    /// Final-layer embedding width.
    dim: usize,
    /// `num_clusters × dim`, row-major.
    centroids: Vec<f32>,
    /// Cluster per vertex id ([`TOMBSTONE`] = not indexed).
    assign: Vec<u32>,
    /// Member vertex ids per cluster, ascending.
    postings: Vec<Vec<u32>>,
    /// Per-cluster upper bound on the L2 distance from the centroid to any
    /// member. Monotone under repair (a member moving in can only raise it,
    /// a member leaving never lowers it), recomputed exactly on build and
    /// split/merge. Probe ranking uses it as a maximum-inner-product bound:
    /// `dot(x, q) ≤ dot(c, q) + radius · ‖q‖` for every member `x` of `c` —
    /// a loose (stale) radius costs probe order, never bound validity.
    radii: Vec<f32>,
    /// The `dim × num_clusters` transpose of `centroids`, kept so the
    /// per-query centroid scan runs as one row-times-matrix kernel with a
    /// sequential (vectorizable) inner loop over clusters. Derived state:
    /// refreshed whenever the centroid table changes shape (build, split,
    /// merge) and deliberately excluded from [`TopKIndex::contents_eq`].
    centroids_t: Matrix,
    /// Indexed (non-tombstoned) rows.
    active: usize,
}

/// The `dim × clusters` transpose of the row-major centroid table — the
/// layout [`TopKIndex::candidates`] feeds to `row_matmul_into`.
fn transpose_centroids(centroids: &[f32], dim: usize) -> Matrix {
    if dim == 0 {
        return Matrix::zeros(0, 0);
    }
    let clusters = centroids.len() / dim;
    let mut out = Matrix::zeros(dim, clusters);
    let data = out.as_mut_slice();
    for c in 0..clusters {
        for (d, &x) in centroids[c * dim..(c + 1) * dim].iter().enumerate() {
            data[d * clusters + c] = x;
        }
    }
    out
}

/// The nearest centroid to `row` by squared L2 distance, ties to the lower
/// cluster index. This is *the* assignment function — build, repair, split
/// and merge all funnel through it, which is what makes incremental repair
/// equal a from-scratch rebuild under the same centroids.
fn nearest_centroid(centroids: &[f32], dim: usize, row: &[f32]) -> u32 {
    nearest_centroid_with_dist(centroids, dim, row).0
}

/// [`nearest_centroid`] plus the squared distance to it, so maintenance
/// paths can fold the winning distance into the cluster's radius bound
/// without a second pass.
fn nearest_centroid_with_dist(centroids: &[f32], dim: usize, row: &[f32]) -> (u32, f32) {
    debug_assert!(!centroids.is_empty());
    let mut best = 0u32;
    let mut best_dist = f32::INFINITY;
    for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
        let mut dist = 0.0f32;
        for (a, b) in centroid.iter().zip(row.iter()) {
            let d = a - b;
            dist += d * d;
        }
        if dist < best_dist {
            best_dist = dist;
            best = c as u32;
        }
    }
    (best, best_dist)
}

fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

impl TopKIndex {
    /// Builds the bootstrap index: deterministic seeded k-means over the
    /// final-layer rows of `store` (restricted to `owned` vertices when
    /// given), then one assignment pass.
    fn build(store: &EmbeddingStore, owned: Option<&[bool]>, params: &IndexParams) -> TopKIndex {
        let table = store.embeddings(store.num_layers());
        let dim = table.cols();
        let n = table.rows();
        let is_owned = |v: usize| owned.is_none_or(|o| o.get(v).copied().unwrap_or(false));
        let mut members: Vec<u32> = (0..n as u32).filter(|&v| is_owned(v as usize)).collect();
        let k = params.effective_clusters(members.len());

        // Seed centroids from k distinct member rows (partial Fisher–Yates
        // over the member list, deterministic per seed).
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let mut centroids = Vec::with_capacity(k * dim);
        if members.is_empty() {
            centroids.resize(k * dim, 0.0);
        } else {
            for i in 0..k {
                let j = rng.gen_range(i..members.len());
                members.swap(i, j);
                centroids.extend_from_slice(table.row(members[i] as usize));
            }
            members.sort_unstable();
        }

        // Lloyd refinement; an emptied cluster keeps its previous centroid.
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0u32; k];
        for _ in 0..params.kmeans_iters {
            sums.iter_mut().for_each(|s| *s = 0.0);
            counts.iter_mut().for_each(|c| *c = 0);
            for &v in &members {
                let row = table.row(v as usize);
                let c = nearest_centroid(&centroids, dim, row) as usize;
                counts[c] += 1;
                let sum = &mut sums[c * dim..(c + 1) * dim];
                for (s, x) in sum.iter_mut().zip(row.iter()) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    let centroid = &mut centroids[c * dim..(c + 1) * dim];
                    for (out, s) in centroid.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                        *out = s * inv;
                    }
                }
            }
        }

        // Final assignment under the frozen centroids.
        let centroids_t = transpose_centroids(&centroids, dim);
        let mut index = TopKIndex {
            epoch: 0,
            structure_epoch: 0,
            dim,
            centroids,
            assign: vec![TOMBSTONE; n],
            postings: vec![Vec::new(); k],
            radii: vec![0.0; k],
            centroids_t,
            active: 0,
        };
        for &v in &members {
            let (c, dist) =
                nearest_centroid_with_dist(&index.centroids, dim, table.row(v as usize));
            index.assign[v as usize] = c;
            index.postings[c as usize].push(v);
            index.radii[c as usize] = index.radii[c as usize].max(dist.sqrt());
            index.active += 1;
        }
        index
    }

    /// The epoch this index was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bumped on every split / merge / rebuild.
    pub fn structure_epoch(&self) -> u64 {
        self.structure_epoch
    }

    /// The indexed embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coarse clusters.
    pub fn num_clusters(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed (non-tombstoned) rows.
    pub fn len(&self) -> usize {
        self.active
    }

    /// Whether no row is indexed.
    pub fn is_empty(&self) -> bool {
        self.active == 0
    }

    /// The per-vertex cluster assignment (`u32::MAX` = not indexed).
    pub fn assignments(&self) -> &[u32] {
        &self.assign
    }

    /// The member vertex ids per cluster, ascending within each cluster.
    pub fn postings(&self) -> &[Vec<u32>] {
        &self.postings
    }

    /// The flat `num_clusters × dim` centroid table.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Per-cluster upper bounds on the centroid→member L2 distance (see the
    /// field doc: exact after build/split/merge, monotone-loose under
    /// repair).
    pub fn radii(&self) -> &[f32] {
        &self.radii
    }

    /// The member vertices of the `nprobe` clusters with the largest
    /// **maximum-inner-product bound** `dot(centroid, query) + radius·‖query‖`
    /// (ties towards the lower cluster index). The radius term is what keeps
    /// recall up for dot-product retrieval over L2 clusters: a high-dot
    /// member far from its (low-dot) centroid still surfaces, because its
    /// cluster's bound is inflated by exactly that distance.
    /// `nprobe ≥` [`TopKIndex::num_clusters`] returns every indexed vertex,
    /// which is what makes a full-probe read identical to the exact scan.
    pub fn candidates(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        if nprobe == 0 {
            return Vec::new();
        }
        let query_norm = dot(query, query).sqrt();
        let clusters = self.postings.len();
        let mut ranked: Vec<(f32, u32)>;
        if self.dim > 0 && query.len() == self.dim && self.centroids_t.cols() == clusters {
            // Hot path: one query × centroidsᵀ kernel scores every cluster
            // with a sequential inner loop over clusters — the accumulation
            // order per score is the same ascending-dimension sum as the
            // scalar dot below, so both paths rank bit-identically.
            let mut scores = vec![0.0f32; clusters];
            row_matmul_into(query, &self.centroids_t, &mut scores)
                .expect("transposed centroid table tracks the centroid table");
            ranked = scores
                .iter()
                .enumerate()
                .map(|(c, &s)| (s + self.radii[c] * query_norm, c as u32))
                .collect();
        } else {
            ranked = self
                .centroids
                .chunks_exact(self.dim.max(1))
                .enumerate()
                .map(|(c, centroid)| (dot(centroid, query) + self.radii[c] * query_norm, c as u32))
                .collect();
        }
        let cmp = |a: &(f32, u32), b: &(f32, u32)| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1));
        // Partial selection: with thousands of clusters a full sort would
        // rival the candidate scoring itself. `cmp` is a total order (ids
        // are unique), so the selected prefix is exactly the sorted top
        // `nprobe`.
        if nprobe < ranked.len() {
            ranked.select_nth_unstable_by(nprobe - 1, cmp);
            ranked.truncate(nprobe);
        }
        ranked.sort_unstable_by(cmp);
        let total: usize = ranked
            .iter()
            .map(|&(_, c)| self.postings[c as usize].len())
            .sum();
        let mut out = Vec::with_capacity(total);
        for &(_, c) in &ranked {
            out.extend_from_slice(&self.postings[c as usize]);
        }
        out
    }

    /// A from-scratch reassignment of `store` under **this** index's
    /// centroids — the oracle the repair-determinism test compares against
    /// (incremental repair must land on exactly this state).
    pub fn rebuilt_with_same_centroids(
        &self,
        store: &EmbeddingStore,
        owned: Option<&[bool]>,
    ) -> TopKIndex {
        let table = store.embeddings(store.num_layers());
        let n = table.rows();
        let is_owned = |v: usize| owned.is_none_or(|o| o.get(v).copied().unwrap_or(false));
        let mut out = TopKIndex {
            epoch: self.epoch,
            structure_epoch: self.structure_epoch,
            dim: self.dim,
            centroids: self.centroids.clone(),
            assign: vec![TOMBSTONE; n],
            postings: vec![Vec::new(); self.postings.len()],
            radii: vec![0.0; self.postings.len()],
            centroids_t: self.centroids_t.clone(),
            active: 0,
        };
        for v in 0..n {
            if !is_owned(v) {
                continue;
            }
            let (c, dist) = nearest_centroid_with_dist(&out.centroids, out.dim, table.row(v));
            out.assign[v] = c;
            out.postings[c as usize].push(v as u32);
            out.radii[c as usize] = out.radii[c as usize].max(dist.sqrt());
            out.active += 1;
        }
        out
    }

    /// Structural equality ignoring the epoch stamps: same centroids,
    /// assignment and postings.
    pub fn contents_eq(&self, other: &TopKIndex) -> bool {
        self.dim == other.dim
            && self.centroids == other.centroids
            && self.assign == other.assign
            && self.postings == other.postings
    }

    /// Reassigns one vertex; returns whether it moved. `None` as `row`
    /// tombstones the vertex.
    fn reassign(&mut self, v: usize, row: Option<&[f32]>) -> bool {
        if v >= self.assign.len() {
            self.assign.resize(v + 1, TOMBSTONE);
        }
        let old = self.assign[v];
        let (new, dist) = match row {
            Some(row) => nearest_centroid_with_dist(&self.centroids, self.dim, row),
            None => (TOMBSTONE, 0.0),
        };
        if old == new {
            if new != TOMBSTONE {
                // Same cluster, possibly a moved row: keep the bound valid.
                self.radii[new as usize] = self.radii[new as usize].max(dist.sqrt());
            }
            return false;
        }
        if old != TOMBSTONE {
            let posting = &mut self.postings[old as usize];
            if let Ok(i) = posting.binary_search(&(v as u32)) {
                posting.remove(i);
            }
            self.active -= 1;
        }
        if new != TOMBSTONE {
            let posting = &mut self.postings[new as usize];
            if let Err(i) = posting.binary_search(&(v as u32)) {
                posting.insert(i, v as u32);
            }
            self.radii[new as usize] = self.radii[new as usize].max(dist.sqrt());
            self.active += 1;
        }
        self.assign[v] = new;
        true
    }
}

/// Shared state between the one [`IndexMaintainer`] and every
/// [`IndexReader`] — the index-side mirror of
/// [`crate::versioned::VersionedStore`].
#[derive(Debug)]
pub struct VersionedIndex {
    epoch: AtomicU64,
    current: Mutex<Arc<TopKIndex>>,
}

/// A reader's cached handle onto the latest published index. Cheap to
/// clone; refreshes lazily on access with one atomic epoch load.
#[derive(Debug, Clone)]
pub struct IndexReader {
    shared: Arc<VersionedIndex>,
    cached: Arc<TopKIndex>,
}

impl IndexReader {
    /// The freshest published index (one atomic load in steady state;
    /// re-clones the `Arc` under the pointer-swap mutex only when a newer
    /// epoch exists).
    pub fn index(&mut self) -> &Arc<TopKIndex> {
        if self.shared.epoch.load(Ordering::Acquire) != self.cached.epoch {
            self.cached = self
                .shared
                .current
                .lock()
                .expect("index lock poisoned")
                .clone();
        }
        &self.cached
    }

    /// The index this handle currently caches, without refreshing.
    pub fn cached(&self) -> &Arc<TopKIndex> {
        &self.cached
    }

    /// Refreshes and returns the current index epoch.
    pub fn epoch(&mut self) -> u64 {
        self.index().epoch
    }
}

/// The single writer side of the index: consumes per-flush dirty-row sets
/// and publishes repaired epochs, double-buffering exactly like the
/// [`crate::versioned::SnapshotPublisher`].
#[derive(Debug)]
pub struct IndexMaintainer {
    params: IndexParams,
    shared: Arc<VersionedIndex>,
    /// The index retired by the previous publication, reclaimed (and
    /// dirty-repaired) once readers have moved on.
    retired: Option<Arc<TopKIndex>>,
    /// The previous publication's dirty set (`None` when unknown): the
    /// retired buffer is two epochs stale, so repairing it needs the union
    /// of the last two dirty sets.
    prev_dirty: Option<Vec<VertexId>>,
    /// Ownership mask for sharded sessions (`None` = this index covers
    /// every store row).
    owned: Option<Vec<bool>>,
    /// Structure epoch of the *live* index; a retired buffer that disagrees
    /// predates a split/merge and cannot be repaired.
    structure_epoch: u64,
    stats: Arc<SharedIndexStats>,
}

impl IndexMaintainer {
    /// Builds the epoch-0 index over `store` (restricted to `owned` rows
    /// when given) and returns the maintainer plus a first reader handle.
    pub fn bootstrap(
        store: &EmbeddingStore,
        owned: Option<Vec<bool>>,
        params: IndexParams,
    ) -> (IndexMaintainer, IndexReader) {
        let stats = Arc::new(SharedIndexStats::default());
        let initial = Arc::new(TopKIndex::build(store, owned.as_deref(), &params));
        SharedIndexStats::bump(&stats.builds, 1);
        let shared = Arc::new(VersionedIndex {
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::clone(&initial)),
        });
        let maintainer = IndexMaintainer {
            params,
            shared: Arc::clone(&shared),
            retired: None,
            prev_dirty: None,
            owned,
            structure_epoch: 0,
            stats,
        };
        let reader = IndexReader {
            shared,
            cached: initial,
        };
        (maintainer, reader)
    }

    /// A new reader handle starting at the current epoch.
    pub fn reader(&self) -> IndexReader {
        let cached = self
            .shared
            .current
            .lock()
            .expect("index lock poisoned")
            .clone();
        IndexReader {
            shared: Arc::clone(&self.shared),
            cached,
        }
    }

    /// The shared counters (cloned into session handles at spawn).
    pub fn shared_stats(&self) -> Arc<SharedIndexStats> {
        Arc::clone(&self.stats)
    }

    /// A point-in-time copy of the maintenance counters.
    pub fn stats(&self) -> IndexStats {
        self.stats.snapshot()
    }

    /// The epoch of the most recent publication (0 before any).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    fn is_owned(&self, v: usize) -> bool {
        self.owned
            .as_ref()
            .is_none_or(|o| o.get(v).copied().unwrap_or(false))
    }

    /// Publishes the index state for `store` as the next epoch. `dirty`
    /// names the store rows changed since the previous publication (`None`
    /// = unknown, forcing a full reassignment sweep). Call **before** the
    /// store publication of the same flush so the published index is never
    /// older than the store readers pair it with.
    pub fn publish(&mut self, store: &EmbeddingStore, dirty: Option<&[VertexId]>) -> u64 {
        let epoch = self.shared.epoch.load(Ordering::Relaxed) + 1;
        let mut index = match self.retired.take().map(Arc::try_unwrap) {
            Some(Ok(reusable))
                if dirty.is_some()
                    && self.prev_dirty.is_some()
                    && reusable.structure_epoch == self.structure_epoch =>
            {
                // The reclaimed buffer missed the previous publication's
                // changes and this one's: repair the union of both dirty
                // sets. A structural change in the last two epochs (split /
                // merge) falls through to the clone path instead — the
                // buffer's cluster numbering no longer matches.
                SharedIndexStats::bump(&self.stats.buffer_reuses, 1);
                let mut index = reusable;
                let prev = self.prev_dirty.take().unwrap_or_default();
                self.repair(&mut index, store, prev.iter().copied());
                self.repair(&mut index, store, dirty.unwrap_or(&[]).iter().copied());
                self.prev_dirty = Some(prev); // restore the capacity buffer
                index
            }
            still_shared => {
                // Warm-up, a slow reader, an unknown dirty set or a recent
                // structural change: start from a clone of the live index.
                drop(still_shared);
                SharedIndexStats::bump(&self.stats.clone_fallbacks, 1);
                let mut index: TopKIndex =
                    (**self.shared.current.lock().expect("index lock poisoned")).clone();
                match dirty {
                    Some(d) => self.repair(&mut index, store, d.iter().copied()),
                    None => {
                        // No dirty set: sweep every row under the frozen
                        // centroids (still no k-means rebuild).
                        let n = store.num_vertices() as u32;
                        self.repair(&mut index, store, (0..n).map(VertexId));
                    }
                }
                index
            }
        };

        // Rows appended since the buffer's epoch may be missing from every
        // dirty set it saw; index them explicitly.
        if index.assign.len() < store.num_vertices() {
            let from = index.assign.len() as u32;
            let to = store.num_vertices() as u32;
            self.repair(&mut index, store, (from..to).map(VertexId));
        }
        SharedIndexStats::bump(&self.stats.repairs, 1);

        self.rebalance(&mut index, store);

        index.epoch = epoch;
        // Remember this publication's dirty set for the next reclaim.
        match (dirty, &mut self.prev_dirty) {
            (Some(d), Some(buf)) => {
                buf.clear();
                buf.extend_from_slice(d);
            }
            (Some(d), slot @ None) => *slot = Some(d.to_vec()),
            (None, slot) => *slot = None,
        }
        let next = Arc::new(index);
        let previous = {
            let mut current = self.shared.current.lock().expect("index lock poisoned");
            std::mem::replace(&mut *current, next)
        };
        self.shared.epoch.store(epoch, Ordering::Release);
        self.retired = Some(previous);
        epoch
    }

    /// Re-derives the assignment of every row in `rows` from the frozen
    /// centroids (the pure assignment function), tombstoning rows that left
    /// the store or this shard's ownership.
    fn repair(
        &self,
        index: &mut TopKIndex,
        store: &EmbeddingStore,
        rows: impl Iterator<Item = VertexId>,
    ) {
        let table = store.embeddings(store.num_layers());
        let mut repaired = 0u64;
        let mut moved = 0u64;
        for v in rows {
            let vi = v.index();
            let row = (vi < table.rows() && self.is_owned(vi)).then(|| table.row(vi));
            if index.reassign(vi, row) {
                moved += 1;
            }
            repaired += 1;
        }
        SharedIndexStats::bump(&self.stats.rows_repaired, repaired);
        SharedIndexStats::bump(&self.stats.rows_moved, moved);
    }

    /// Lazily splits one overfull cluster and/or merges one underfull
    /// cluster per publication, keeping the assignment invariant intact
    /// (every change re-runs the pure nearest-centroid rule).
    fn rebalance(&mut self, index: &mut TopKIndex, store: &EmbeddingStore) {
        if index.active == 0 {
            return;
        }
        let table = store.embeddings(store.num_layers());
        let entry_structure = index.structure_epoch;
        let mean = index.active as f64 / index.postings.len() as f64;

        // Split: the largest cluster, when it outgrew the threshold and a
        // distinct member row exists to seed the new centroid from.
        let split_at = (self.params.split_factor * mean).max(1.0);
        let largest = index
            .postings
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.len().cmp(&b.1.len()).then(b.0.cmp(&a.0)))
            .map(|(c, p)| (c, p.len()))
            .filter(|&(_, len)| (len as f64) > split_at && index.postings.len() < index.active);
        if let Some((c, _)) = largest {
            let centroid_start = c * index.dim;
            let centroid = index.centroids[centroid_start..centroid_start + index.dim].to_vec();
            // New centroid: the member farthest from its centroid (ties to
            // the lower vertex id) — deterministic, no rand needed.
            let (farthest, dist) = index.postings[c]
                .iter()
                .map(|&v| (v, squared_l2(table.row(v as usize), &centroid)))
                .fold(
                    (u32::MAX, -1.0f32),
                    |best, (v, d)| {
                        if d > best.1 {
                            (v, d)
                        } else {
                            best
                        }
                    },
                );
            if dist > 0.0 {
                index
                    .centroids
                    .extend_from_slice(table.row(farthest as usize));
                index.postings.push(Vec::new());
                let new = (index.postings.len() - 1) as u32;
                // One pass over every indexed row: the old assignment was
                // the argmin over the previous centroids, so comparing it
                // against the new centroid alone re-establishes the global
                // argmin (ties keep the lower, i.e. old, index). The same
                // pass sees every row's distance to its final centroid, so
                // the radius bounds come out exact for free.
                let mut moved = 0u64;
                let mut radii = vec![0.0f32; index.postings.len()];
                for v in 0..index.assign.len() {
                    let cur = index.assign[v];
                    if cur == TOMBSTONE {
                        continue;
                    }
                    let row = table.row(v);
                    let cur_start = cur as usize * index.dim;
                    let cur_dist =
                        squared_l2(row, &index.centroids[cur_start..cur_start + index.dim]);
                    let new_start = new as usize * index.dim;
                    let new_dist =
                        squared_l2(row, &index.centroids[new_start..new_start + index.dim]);
                    if new_dist < cur_dist {
                        index.assign[v] = new;
                        moved += 1;
                        radii[new as usize] = radii[new as usize].max(new_dist.sqrt());
                    } else {
                        radii[cur as usize] = radii[cur as usize].max(cur_dist.sqrt());
                    }
                }
                index.radii = radii;
                // Rebuild the postings in one ascending pass.
                index.postings.iter_mut().for_each(Vec::clear);
                for (v, &c) in index.assign.iter().enumerate() {
                    if c != TOMBSTONE {
                        index.postings[c as usize].push(v as u32);
                    }
                }
                index.structure_epoch += 1;
                self.structure_epoch = index.structure_epoch;
                SharedIndexStats::bump(&self.stats.splits, 1);
                SharedIndexStats::bump(&self.stats.rows_moved, moved);
            }
        }

        // Merge: the smallest cluster, when it fell under the threshold
        // (empty clusters always qualify). Removal shifts higher cluster
        // indices down by one, preserving their relative order — so every
        // surviving tie still breaks the same way.
        if index.postings.len() > 1 {
            let mean = index.active as f64 / index.postings.len() as f64;
            let merge_below = mean / self.params.split_factor;
            let smallest = index
                .postings
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.len().cmp(&b.1.len()).then(a.0.cmp(&b.0)))
                .map(|(c, p)| (c, p.len()))
                .filter(|&(_, len)| (len as f64) < merge_below);
            if let Some((c, _)) = smallest {
                let members = index.postings.remove(c);
                index.centroids.drain(c * index.dim..(c + 1) * index.dim);
                index.radii.remove(c);
                for a in index.assign.iter_mut() {
                    if *a != TOMBSTONE && *a > c as u32 {
                        *a -= 1;
                    }
                }
                let table = store.embeddings(store.num_layers());
                for &v in &members {
                    let (c, dist) = nearest_centroid_with_dist(
                        &index.centroids,
                        index.dim,
                        table.row(v as usize),
                    );
                    index.assign[v as usize] = c;
                    let posting = &mut index.postings[c as usize];
                    if let Err(i) = posting.binary_search(&v) {
                        posting.insert(i, v);
                    }
                    index.radii[c as usize] = index.radii[c as usize].max(dist.sqrt());
                }
                index.structure_epoch += 1;
                self.structure_epoch = index.structure_epoch;
                SharedIndexStats::bump(&self.stats.merges, 1);
                SharedIndexStats::bump(&self.stats.rows_moved, members.len() as u64);
            }
        }

        // The transposed scan table is derived from the centroid table, so
        // one refresh after any structural change keeps them in lockstep.
        if index.structure_epoch != entry_structure {
            index.centroids_t = transpose_centroids(&index.centroids, index.dim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_gnn::{Aggregator, GnnModel, LayerKind};

    /// A 2-layer model whose final layer is 2 wide; `n` vertices at
    /// deterministic positions on a grid-ish layout.
    fn store(n: usize, f: impl Fn(usize) -> [f32; 2]) -> EmbeddingStore {
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[3, 4, 2], 0).unwrap();
        let mut s = EmbeddingStore::zeroed(&model, n);
        for v in 0..n {
            s.set_embedding(2, VertexId(v as u32), &f(v)).unwrap();
        }
        s
    }

    fn params(clusters: usize) -> IndexParams {
        IndexParams {
            clusters,
            ..IndexParams::default()
        }
    }

    /// Every owned row sits in exactly one posting, and its assignment is
    /// the nearest centroid.
    fn assert_invariant(index: &TopKIndex, store: &EmbeddingStore, owned: Option<&[bool]>) {
        let table = store.embeddings(store.num_layers());
        let mut seen = 0usize;
        for (c, posting) in index.postings().iter().enumerate() {
            let mut prev = None;
            for &v in posting {
                assert_eq!(index.assignments()[v as usize], c as u32);
                assert!(prev.is_none_or(|p| p < v), "postings must be ascending");
                prev = Some(v);
                seen += 1;
            }
        }
        assert_eq!(seen, index.len());
        for v in 0..table.rows() {
            let is_owned = owned.is_none_or(|o| o[v]);
            let a = index.assignments()[v];
            if !is_owned {
                assert_eq!(a, u32::MAX, "non-owned rows must be tombstoned");
                continue;
            }
            let expect = nearest_centroid(index.centroids(), index.dim(), table.row(v));
            assert_eq!(a, expect, "vertex {v} not assigned to its nearest centroid");
        }
    }

    #[test]
    fn build_assigns_every_row_to_its_nearest_centroid() {
        let s = store(40, |v| [(v % 8) as f32, (v / 8) as f32]);
        let (maintainer, reader) = IndexMaintainer::bootstrap(&s, None, params(5));
        let index = reader.cached();
        assert_eq!(index.num_clusters(), 5);
        assert_eq!(index.len(), 40);
        assert_invariant(index, &s, None);
        assert_eq!(maintainer.stats().builds, 1);
    }

    #[test]
    fn full_probe_returns_every_indexed_vertex() {
        let s = store(25, |v| [v as f32, (v * v % 7) as f32]);
        let (_m, reader) = IndexMaintainer::bootstrap(&s, None, params(4));
        let mut all = reader.cached().candidates(&[1.0, 0.5], usize::MAX);
        all.sort_unstable();
        assert_eq!(all, (0..25u32).collect::<Vec<_>>());
        // A reduced probe returns a subset.
        let some = reader.cached().candidates(&[1.0, 0.5], 1);
        assert!(!some.is_empty() && some.len() < 25);
    }

    #[test]
    fn ownership_mask_restricts_the_index_to_owned_rows() {
        let s = store(20, |v| [v as f32, 0.0]);
        let owned: Vec<bool> = (0..20).map(|v| v % 2 == 0).collect();
        let (_m, reader) = IndexMaintainer::bootstrap(&s, Some(owned.clone()), params(3));
        let index = reader.cached();
        assert_eq!(index.len(), 10);
        assert_invariant(index, &s, Some(&owned));
    }

    #[test]
    fn dirty_repair_moves_rows_and_matches_a_fresh_reassignment() {
        let mut s = store(30, |v| [(v % 6) as f32, (v / 6) as f32]);
        let (mut maintainer, mut reader) = IndexMaintainer::bootstrap(&s, None, params(4));
        for step in 1..=6u32 {
            // Move a couple of rows far away each epoch.
            let a = VertexId(step % 30);
            let b = VertexId((step * 7) % 30);
            s.set_embedding(2, a, &[step as f32 * 3.0, 0.0]).unwrap();
            s.set_embedding(2, b, &[0.0, step as f32 * 3.0]).unwrap();
            let epoch = maintainer.publish(&s, Some(&[a, b]));
            assert_eq!(epoch as u32, step);
            let index = reader.index();
            assert_eq!(index.epoch() as u32, step);
            assert_invariant(index, &s, None);
            assert!(index.contents_eq(&index.rebuilt_with_same_centroids(&s, None)));
        }
        let stats = maintainer.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.rebuilds, 0);
        assert_eq!(stats.repairs, 6);
        assert!(
            stats.buffer_reuses >= 3,
            "steady-state publications should reclaim the double buffer: {stats:?}"
        );
        assert!(stats.rows_moved >= 1);
    }

    #[test]
    fn unknown_dirty_set_forces_a_sweep_not_a_rebuild() {
        let mut s = store(20, |v| [v as f32, 1.0]);
        let (mut maintainer, mut reader) = IndexMaintainer::bootstrap(&s, None, params(3));
        s.set_embedding(2, VertexId(4), &[99.0, 0.0]).unwrap();
        maintainer.publish(&s, None);
        let index = reader.index();
        assert_invariant(index, &s, None);
        let stats = maintainer.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.rebuilds, 0, "a sweep keeps the seeded centroids");
        assert_eq!(stats.rows_repaired, 20);
    }

    #[test]
    fn overfull_cluster_splits_and_keeps_the_invariant() {
        // One tight blob plus a far outlier: k-means with k=2 separates
        // them, then the blob is inflated far past the imbalance threshold.
        let mut s = store(40, |v| if v == 0 { [100.0, 100.0] } else { [0.0, 0.0] });
        let p = IndexParams {
            clusters: 2,
            split_factor: 1.5,
            ..IndexParams::default()
        };
        let (mut maintainer, mut reader) = IndexMaintainer::bootstrap(&s, None, p);
        // Spread the blob out so a farthest member exists to seed the split.
        let dirty: Vec<VertexId> = (1..40).map(VertexId).collect();
        for (i, &v) in dirty.iter().enumerate() {
            s.set_embedding(2, v, &[i as f32, -(i as f32)]).unwrap();
        }
        maintainer.publish(&s, Some(&dirty));
        let index = reader.index();
        let stats = maintainer.stats();
        assert!(stats.splits >= 1, "expected a lazy split: {stats:?}");
        // The split may leave the old outlier cluster a starving singleton
        // that merges away in the same rebalance; either way the structure
        // changed and the assignment invariant must survive it.
        assert!(index.num_clusters() >= 2);
        assert!(index.structure_epoch() >= 1);
        assert_invariant(index, &s, None);
        assert!(index.contents_eq(&index.rebuilt_with_same_centroids(&s, None)));
    }

    #[test]
    fn underfull_cluster_merges_away_and_keeps_the_invariant() {
        // Three clusters; then collapse every row onto one point so two
        // clusters starve and merge away over the next publications.
        let mut s = store(30, |v| [(v % 3) as f32 * 50.0, 0.0]);
        let p = IndexParams {
            clusters: 3,
            split_factor: 2.0,
            ..IndexParams::default()
        };
        let (mut maintainer, mut reader) = IndexMaintainer::bootstrap(&s, None, p);
        let dirty: Vec<VertexId> = (0..30).map(VertexId).collect();
        for &v in &dirty {
            s.set_embedding(2, v, &[0.0, 0.0]).unwrap();
        }
        for _ in 0..4 {
            maintainer.publish(&s, Some(&dirty));
        }
        let index = reader.index();
        let stats = maintainer.stats();
        assert!(stats.merges >= 1, "starved clusters must merge: {stats:?}");
        assert!(index.num_clusters() < 3);
        assert_invariant(index, &s, None);
        assert!(index.contents_eq(&index.rebuilt_with_same_centroids(&s, None)));
    }

    #[test]
    fn readers_swap_lazily_and_slow_readers_force_clone_fallbacks() {
        let mut s = store(16, |v| [v as f32, 0.0]);
        let (mut maintainer, mut reader) = IndexMaintainer::bootstrap(&s, None, params(2));
        let stale = reader.clone(); // pins epoch 0
        for step in 1..=5u32 {
            s.set_embedding(2, VertexId(0), &[step as f32, 5.0])
                .unwrap();
            maintainer.publish(&s, Some(&[VertexId(0)]));
        }
        assert_eq!(stale.cached().epoch(), 0);
        assert_eq!(reader.index().epoch(), 5);
        assert!(maintainer.stats().clone_fallbacks >= 1);
        // A fresh reader starts at the current epoch.
        assert_eq!(maintainer.reader().cached().epoch(), 5);
    }

    #[test]
    fn grown_stores_index_the_appended_rows() {
        let s = store(10, |v| [v as f32, 0.0]);
        let (mut maintainer, mut reader) = IndexMaintainer::bootstrap(&s, None, params(2));
        let grown = store(14, |v| [v as f32, 0.0]);
        maintainer.publish(&grown, Some(&[]));
        let index = reader.index();
        assert_eq!(index.len(), 14);
        assert_invariant(index, &grown, None);
    }
}
