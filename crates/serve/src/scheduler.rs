//! The update-coalescing scheduler: an MPSC queue in front of any
//! [`StreamingEngine`].
//!
//! Producers submit [`GraphUpdate`]s through cloneable [`UpdateClient`]
//! handles into a **bounded** queue (backpressure: block or shed). A
//! dedicated scheduler thread drains the queue into a coalescing window and
//! flushes it into the engine when either window closes:
//!
//! * **size window** — the window holds [`ServeConfig::max_batch`] raw
//!   updates;
//! * **time window** — the oldest raw update in the window is older than
//!   [`ServeConfig::max_delay`].
//!
//! Within a window, same-key churn is deduplicated *exactly*: repeated
//! feature rewrites of one vertex keep only the last value, and an edge
//! addition cancelled by a later deletion of the same edge is dropped
//! entirely. Both rewrites preserve the final graph and feature state, and
//! the engines are exact with respect to that state (pinned by the
//! workspace's exactness suites), so the coalesced batch commits the same
//! embeddings as replaying the raw window.
//!
//! After each flush the scheduler publishes a new [`EpochSnapshot`] through
//! the [`SnapshotPublisher`], which is what makes the batch visible to
//! readers — queries never touch the engine's working store.

use crate::admission::{AdmissionController, AdmissionParams, StagedWindow};
use crate::durability::{
    recover, write_checkpoint_ref, CheckpointRef, DurabilityConfig, RecoveryReport, WalFrame,
    WalWriter, FP_AFTER_PUBLISH,
};
use crate::index::{IndexMaintainer, IndexParams, IndexReader, IndexStats, SharedIndexStats};
use crate::metrics::ServeMetrics;
use crate::versioned::{SnapshotPublisher, SnapshotReader, VersionedStore};
use ripple_core::{DeltaMessage, Footprint, RippleError, StreamingEngine};
use ripple_graph::{GraphUpdate, UpdateBatch, VertexId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(doc)]
use crate::versioned::EpochSnapshot;

/// What a full queue does to the next submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until the scheduler drains a slot — the
    /// closed-loop default: producers slow down to the engine's pace.
    #[default]
    Block,
    /// Reject the update immediately ([`Submission::Shed`]) and count it —
    /// the load-shedding mode for latency-sensitive ingest paths.
    Shed,
}

/// Configuration of the serving scheduler.
///
/// Construct it through [`ServeConfig::builder`] (or take
/// [`ServeConfig::default`]): the builder validates the knobs once up front
/// so a session can never start with a queue or window it cannot service.
/// The struct is `#[non_exhaustive]` — downstream crates read the fields
/// freely but cannot assemble unvalidated literals.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bounded queue capacity between producers and the scheduler thread.
    pub queue_capacity: usize,
    /// Size window: flush once this many raw updates are pending.
    pub max_batch: usize,
    /// Time window: flush once the oldest pending update is this old.
    pub max_delay: Duration,
    /// Reaction to a full queue.
    pub policy: BackpressurePolicy,
    /// Record every flushed batch (with its raw-update count and epoch) for
    /// post-hoc inspection — used by the linearizability tests; off in
    /// production to avoid unbounded growth.
    pub record_batches: bool,
    /// Parameters of the epoch-repaired IVF top-k index maintained next to
    /// the snapshots ([`crate::ReadMode::Approx`] reads probe it). `None`
    /// disables the index; approximate reads then fail with
    /// [`ServeError::InvalidQuery`].
    pub index: Option<IndexParams>,
    /// Durability: write-ahead log + epoch checkpoints under the configured
    /// directory, with crash recovery on session start. `None` (the
    /// default) serves purely in memory.
    pub durability: Option<DurabilityConfig>,
    /// Footprint-based concurrent window admission (see
    /// [`crate::admission`]). Disabled by default: the serial
    /// one-window-at-a-time commit pipeline.
    pub admission: AdmissionParams,
}

impl ServeConfig {
    /// Upper bound the builder clamps [`ServeConfig::max_delay`] to; a time
    /// window beyond this just turns the serving tier into an offline batch
    /// job.
    pub const MAX_DELAY: Duration = Duration::from_secs(5);

    /// Starts a builder seeded with the default configuration.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 1024,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            policy: BackpressurePolicy::Block,
            record_batches: false,
            index: Some(IndexParams::default()),
            durability: None,
            admission: AdmissionParams::default(),
        }
    }
}

/// Validating builder for [`ServeConfig`] — the only way to assemble a
/// non-default configuration outside this crate.
///
/// # Example
///
/// ```
/// use ripple_serve::ServeConfig;
///
/// let config = ServeConfig::builder()
///     .max_batch(16)
///     .queue_capacity(256)
///     .build()
///     .unwrap();
/// assert_eq!(config.max_batch, 16);
/// assert!(ServeConfig::builder().max_batch(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the bounded queue capacity (must be non-zero).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the size window (must be non-zero).
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the time window; clamped to [`ServeConfig::MAX_DELAY`] at build
    /// time.
    #[must_use]
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.config.max_delay = max_delay;
        self
    }

    /// Sets the backpressure policy.
    #[must_use]
    pub fn policy(mut self, policy: BackpressurePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enables or disables flush-window recording.
    #[must_use]
    pub fn record_batches(mut self, record: bool) -> Self {
        self.config.record_batches = record;
        self
    }

    /// Sets the IVF top-k index parameters (validated at build time).
    #[must_use]
    pub fn index(mut self, params: IndexParams) -> Self {
        self.config.index = Some(params);
        self
    }

    /// Disables the top-k index; [`crate::ReadMode::Approx`] reads against
    /// the session will fail with [`ServeError::InvalidQuery`].
    #[must_use]
    pub fn no_index(mut self) -> Self {
        self.config.index = None;
        self
    }

    /// Enables durability: every flushed window is WAL-logged before it is
    /// applied, checkpoints are cut every
    /// [`DurabilityConfig::checkpoint_every`] windows, and session start
    /// recovers whatever state the directory holds.
    #[must_use]
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.config.durability = Some(durability);
        self
    }

    /// Disables durability (the default): purely in-memory serving.
    #[must_use]
    pub fn no_durability(mut self) -> Self {
        self.config.durability = None;
        self
    }

    /// Sets the admission knobs (see [`crate::admission`]).
    #[must_use]
    pub fn admission(mut self, params: AdmissionParams) -> Self {
        self.config.admission = params;
        self
    }

    /// Enables footprint-based concurrent window admission with the given
    /// in-flight depth: non-conflicting windows stage together and execute
    /// as one merged engine pass, committing in `window_seq` order.
    #[must_use]
    pub fn concurrent_admission(mut self, max_inflight: usize) -> Self {
        self.config.admission = AdmissionParams::enabled(max_inflight);
        self
    }

    /// Disables concurrent admission (the default): serial commits.
    #[must_use]
    pub fn no_admission(mut self) -> Self {
        self.config.admission = AdmissionParams::default();
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] if `queue_capacity` or
    /// `max_batch` is zero. `max_delay` is clamped, not rejected.
    pub fn build(self) -> crate::Result<ServeConfig> {
        let mut config = self.config;
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be non-zero (every session needs at least one queue slot)"
                    .to_string(),
            ));
        }
        if config.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be non-zero (the size window could never close)".to_string(),
            ));
        }
        if let Some(index) = &config.index {
            if index.kmeans_iters == 0 {
                return Err(ServeError::InvalidConfig(
                    "index.kmeans_iters must be non-zero (centroids would never refine)"
                        .to_string(),
                ));
            }
            if !(index.split_factor > 1.0 && index.split_factor.is_finite()) {
                return Err(ServeError::InvalidConfig(
                    "index.split_factor must be a finite factor > 1.0".to_string(),
                ));
            }
        }
        if let Some(durability) = &config.durability {
            if durability.dir.as_os_str().is_empty() {
                return Err(ServeError::InvalidConfig(
                    "durability.dir must name a directory".to_string(),
                ));
            }
            if durability.segment_bytes == 0 {
                return Err(ServeError::InvalidConfig(
                    "durability.segment_bytes must be non-zero".to_string(),
                ));
            }
        }
        if config.admission.enabled && config.admission.max_inflight == 0 {
            return Err(ServeError::InvalidConfig(
                "admission.max_inflight must be non-zero (no window could ever reserve)"
                    .to_string(),
            ));
        }
        config.max_delay = config.max_delay.min(ServeConfig::MAX_DELAY);
        Ok(config)
    }
}

/// Outcome of [`UpdateClient::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// Accepted; `seq` is the accepted-update counter after this submission
    /// (with a single producer this is the update's 1-based stream position).
    Enqueued {
        /// Accepted-update counter value after this submission.
        seq: u64,
    },
    /// Rejected by the [`BackpressurePolicy::Shed`] policy: the queue was
    /// full.
    Shed,
    /// The scheduler has shut down (or its engine failed); no further
    /// updates are accepted.
    Closed,
}

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The driven engine failed while applying a flushed batch; the engine
    /// is poisoned and the scheduler has stopped.
    Engine(RippleError),
    /// The scheduler thread terminated abnormally (panic).
    SchedulerPanicked,
    /// The durability layer failed (WAL append, checkpoint write, or a
    /// recovery scan found an unreplayable log). The session is poisoned:
    /// the affected window may or may not be durable, and only a restart's
    /// recovery pass can tell.
    Wal(String),
    /// A shard of the sharded tier failed; `error` is the shard-local
    /// failure (engine error, WAL error, or panic).
    ShardFailed {
        /// Partition id of the failed shard.
        shard: u32,
        /// The shard-local failure.
        error: Box<ServeError>,
    },
    /// A [`ServeConfigBuilder`] or sharded-session parameter failed
    /// validation; the message names the offending knob.
    InvalidConfig(String),
    /// A read request failed validation before touching any snapshot: zero
    /// `k`, zero `nprobe`, a query vector whose width does not match the
    /// embedding width, or an approximate read against a session without an
    /// index. The message names the offending parameter.
    InvalidQuery(String),
    /// A point read named a vertex outside the served id space.
    UnknownVertex(VertexId),
    /// A read carried a [`crate::TopKRequest::min_epoch`] floor the
    /// freshest published epoch has not reached yet; retry after the next
    /// flush.
    StaleRead {
        /// The read-your-writes floor the caller demanded.
        floor: u64,
        /// The epoch actually served (minimum across shards when sharded).
        epoch: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "serving engine error: {e}"),
            ServeError::SchedulerPanicked => f.write_str("scheduler thread panicked"),
            ServeError::Wal(why) => write!(f, "durability error: {why}"),
            ServeError::ShardFailed { shard, error } => {
                write!(f, "shard {shard} failed: {error}")
            }
            ServeError::InvalidConfig(why) => write!(f, "invalid serving configuration: {why}"),
            ServeError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            ServeError::UnknownVertex(v) => {
                write!(f, "vertex {} is outside the served id space", v.index())
            }
            ServeError::StaleRead { floor, epoch } => write!(
                f,
                "read floor not reached: min_epoch {floor} demanded, epoch {epoch} served"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::ShardFailed { error, .. } => Some(&**error),
            ServeError::SchedulerPanicked
            | ServeError::Wal(_)
            | ServeError::InvalidConfig(_)
            | ServeError::InvalidQuery(_)
            | ServeError::UnknownVertex(_)
            | ServeError::StaleRead { .. } => None,
        }
    }
}

impl From<RippleError> for ServeError {
    fn from(e: RippleError) -> Self {
        ServeError::Engine(e)
    }
}

/// One update travelling through the queue.
#[derive(Debug)]
pub(crate) struct QueuedUpdate {
    pub(crate) update: GraphUpdate,
    pub(crate) enqueued: Instant,
    /// Whether this is the **second** routed copy of a cross-shard edge
    /// update (always `false` on the single-engine path). Secondary copies
    /// are excluded from the deduplicated staleness of merged reads.
    pub(crate) secondary: bool,
}

/// Queue protocol between clients and the scheduler thread.
pub(crate) enum Msg {
    Update(QueuedUpdate),
    /// Force the current window closed; replies with the epoch after flush.
    Flush(mpsc::Sender<u64>),
    /// Flush, then exit the scheduler loop.
    Stop,
}

/// Cloneable producer handle submitting updates into the scheduler queue.
#[derive(Debug, Clone)]
pub struct UpdateClient {
    tx: SyncSender<Msg>,
    submitted: Arc<AtomicU64>,
    metrics: Arc<ServeMetrics>,
    policy: BackpressurePolicy,
}

impl UpdateClient {
    /// Submits one update, honouring the configured backpressure policy.
    pub fn submit(&self, update: GraphUpdate) -> Submission {
        let queued = QueuedUpdate {
            update,
            enqueued: Instant::now(),
            secondary: false,
        };
        let sent = match self.policy {
            BackpressurePolicy::Block => self.tx.send(Msg::Update(queued)).map_err(|_| false),
            BackpressurePolicy::Shed => {
                self.tx.try_send(Msg::Update(queued)).map_err(|e| match e {
                    TrySendError::Full(_) => true,
                    TrySendError::Disconnected(_) => false,
                })
            }
        };
        match sent {
            Ok(()) => {
                let seq = self.submitted.fetch_add(1, Ordering::Relaxed) + 1;
                self.metrics.record_enqueued();
                Submission::Enqueued { seq }
            }
            Err(true) => {
                self.metrics.record_shed();
                Submission::Shed
            }
            Err(false) => Submission::Closed,
        }
    }

    /// Submits every update of a batch in order; stops at the first
    /// non-enqueued outcome and returns it together with the number of
    /// accepted updates.
    pub fn submit_all<I: IntoIterator<Item = GraphUpdate>>(
        &self,
        updates: I,
    ) -> (usize, Submission) {
        let mut accepted = 0;
        let mut last = Submission::Enqueued { seq: 0 };
        for update in updates {
            last = self.submit(update);
            match last {
                Submission::Enqueued { .. } => accepted += 1,
                _ => return (accepted, last),
            }
        }
        (accepted, last)
    }
}

/// One flushed window, as recorded when [`ServeConfig::record_batches`] is
/// set: the coalesced batch the engine processed, the number of raw updates
/// the window covered, and the epoch the result was published at.
#[derive(Debug, Clone)]
pub struct FlushRecord {
    /// Monotone 1-based sequence of this flushed window. Distinguishes an
    /// *empty* flush (a window that fully cancelled out — logged, publishes
    /// an epoch, bumps the sequence) from a *skipped* flush (nothing
    /// pending — not logged, no sequence consumed), which is what recovery
    /// replay keys on.
    pub window_seq: u64,
    /// The coalesced batch handed to the engine (possibly empty if the
    /// whole window cancelled out).
    pub batch: UpdateBatch,
    /// Halo deltas received from peer shards and absorbed in this window
    /// (always empty for a single-engine session). Replaying `batch` and
    /// `halos` together reproduces the shard's published store bit for bit.
    pub halos: Vec<DeltaMessage>,
    /// Raw accepted updates covered by this window.
    pub raw: u64,
    /// Epoch the post-batch store was published at.
    pub epoch: u64,
    /// Cumulative raw updates applied up to and including this window.
    pub applied_seq: u64,
    /// The engine's topology epoch as of this publication.
    pub topology_epoch: u64,
}

/// Shared handle onto a session's recorded flush windows (present iff
/// [`ServeConfig::record_batches`] is set).
///
/// The handle is cheap to clone and stays readable after the session shuts
/// down, which is how the consistency suites replay a serving run: take the
/// [`FlushLog::snapshot`], feed every record's batch (and, for a shard, its
/// halos) through a fresh engine, and compare stores bit for bit.
#[derive(Debug, Clone, Default)]
pub struct FlushLog {
    records: Arc<Mutex<Vec<FlushRecord>>>,
}

impl FlushLog {
    pub(crate) fn new() -> Self {
        FlushLog::default()
    }

    pub(crate) fn push(&self, record: FlushRecord) {
        self.records
            .lock()
            .expect("flush log poisoned")
            .push(record);
    }

    /// A point-in-time copy of every recorded flush window, in flush order.
    pub fn snapshot(&self) -> Vec<FlushRecord> {
        self.records.lock().expect("flush log poisoned").clone()
    }

    /// Number of recorded flush windows so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("flush log poisoned").len()
    }

    /// Whether nothing has been flushed (or recording produced no windows).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The raw shared vector behind this log.
    #[deprecated(
        since = "0.1.0",
        note = "use `FlushLog::snapshot` or `FlushLog::len` instead"
    )]
    pub fn into_arc(self) -> Arc<Mutex<Vec<FlushRecord>>> {
        self.records
    }
}

/// The coalescing window: pending updates with same-key churn deduplicated.
#[derive(Debug, Default)]
pub(crate) struct Coalescer {
    /// Pending updates in arrival order; cancelled slots are `None`.
    items: Vec<Option<GraphUpdate>>,
    /// Enqueue instant of every raw update of the window (for lag stats).
    enqueues: Vec<Instant>,
    /// Position of the pending feature rewrite per vertex.
    feature_idx: HashMap<VertexId, usize>,
    /// Position of the pending (uncancelled) addition per edge.
    added_idx: HashMap<(VertexId, VertexId), usize>,
    /// Raw updates absorbed since the last flush.
    raw: u64,
    /// Of `raw`, how many were secondary route copies (see
    /// [`QueuedUpdate::secondary`]).
    secondary: u64,
    /// Enqueue instant of the window's first raw update.
    oldest: Option<Instant>,
}

impl Coalescer {
    /// Absorbs one raw update, deduplicating against the pending window.
    pub(crate) fn push(&mut self, queued: QueuedUpdate, metrics: &ServeMetrics) {
        self.raw += 1;
        self.secondary += u64::from(queued.secondary);
        self.oldest.get_or_insert(queued.enqueued);
        self.enqueues.push(queued.enqueued);
        match queued.update {
            GraphUpdate::UpdateFeature { vertex, .. } => {
                if let Some(&i) = self.feature_idx.get(&vertex) {
                    // Keep-last: only the final value is observable, and the
                    // engines are exact w.r.t. final features.
                    self.items[i] = Some(queued.update);
                    metrics.record_coalesced(1);
                } else {
                    self.feature_idx.insert(vertex, self.items.len());
                    self.items.push(Some(queued.update));
                }
            }
            GraphUpdate::AddEdge { src, dst, .. } => {
                self.added_idx.insert((src, dst), self.items.len());
                self.items.push(Some(queued.update));
            }
            GraphUpdate::DeleteEdge { src, dst } => {
                if let Some(i) = self.added_idx.remove(&(src, dst)) {
                    // In-window add → delete churn: in any stream that is
                    // valid update-by-update the edge did not exist before
                    // the addition, so the pair is a no-op and both sides
                    // are dropped.
                    self.items[i] = None;
                    metrics.record_coalesced(2);
                } else {
                    self.items.push(Some(queued.update));
                }
            }
        }
    }

    /// Raw updates pending (including coalesced-away ones).
    pub(crate) fn raw_len(&self) -> u64 {
        self.raw
    }

    /// The instant at which the time window closes, if anything is pending.
    pub(crate) fn deadline(&self, max_delay: Duration) -> Option<Instant> {
        self.oldest.map(|t| t + max_delay)
    }

    /// Empties the window, returning the coalesced batch, the raw count,
    /// the secondary-copy count within it and the enqueue instants of every
    /// covered raw update.
    pub(crate) fn drain(&mut self) -> (UpdateBatch, u64, u64, Vec<Instant>) {
        let updates: Vec<GraphUpdate> = self.items.drain(..).flatten().collect();
        self.feature_idx.clear();
        self.added_idx.clear();
        self.oldest = None;
        let raw = std::mem::take(&mut self.raw);
        let secondary = std::mem::take(&mut self.secondary);
        let enqueues = std::mem::take(&mut self.enqueues);
        (UpdateBatch::from_updates(updates), raw, secondary, enqueues)
    }
}

/// Commit bookkeeping a staged window carries from reservation to
/// publication: the coalesced batch, the raw-update accounting, and the
/// post-commit counters predicted at WAL-append time (the publish
/// debug-asserts the prediction).
#[derive(Debug)]
struct WindowCommit {
    batch: UpdateBatch,
    raw: u64,
    enqueues: Vec<Instant>,
    /// Predicted epoch this window publishes at.
    epoch: u64,
    /// Predicted cumulative raw updates applied through this window.
    applied_seq: u64,
    /// Predicted engine topology epoch as of this window's publication.
    topology_epoch: u64,
}

/// The scheduler state machine: owns the engine, the snapshot publisher and
/// the coalescing window. [`spawn`] runs it on a dedicated thread; tests can
/// drive it synchronously via [`UpdateScheduler::absorb`] /
/// [`UpdateScheduler::flush`].
#[derive(Debug)]
pub struct UpdateScheduler<E> {
    engine: E,
    publisher: SnapshotPublisher,
    /// The IVF top-k index maintained in lockstep with the snapshots
    /// (present iff [`ServeConfig::index`]); published *before* the store
    /// each flush so readers never pair a store epoch with an older index.
    index: Option<IndexMaintainer>,
    config: ServeConfig,
    metrics: Arc<ServeMetrics>,
    window: Coalescer,
    applied_seq: u64,
    /// Monotone sequence of logged windows (see [`FlushRecord::window_seq`]).
    window_seq: u64,
    /// The write-ahead log (present iff [`ServeConfig::durability`]).
    wal: Option<WalWriter>,
    recovery: Option<RecoveryReport>,
    flush_log: Option<FlushLog>,
    /// The concurrent-admission controller (present iff
    /// [`ServeConfig::admission`] is enabled *and* the engine exposes the
    /// model and dirty-row tracking the footprint pipeline needs; engines
    /// without either fall back to the serial path silently).
    admission: Option<AdmissionController<WindowCommit>>,
}

impl<E: StreamingEngine> UpdateScheduler<E> {
    /// Wraps an engine, publishing its bootstrap store as epoch 0.
    ///
    /// With [`ServeConfig::durability`] set, session start first recovers
    /// whatever the durability directory holds: the latest valid checkpoint
    /// is restored into the engine, the WAL tail beyond it is replayed
    /// window by window, and publishing resumes from the recovered epoch —
    /// bit-identical to a session that never crashed, because the engines
    /// are deterministic given the same window sequence. Torn tail frames
    /// were already dropped by the scan; the WAL is then reopened for
    /// appending on a clean frame boundary.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wal`] if the durability directory cannot be scanned or
    /// reopened; [`ServeError::Engine`] if checkpoint restore or WAL replay
    /// fails in the engine.
    pub fn new(
        mut engine: E,
        config: ServeConfig,
        metrics: Arc<ServeMetrics>,
    ) -> crate::Result<(Self, SnapshotReader)> {
        let started = Instant::now();
        let mut window_seq = 0;
        let mut applied_seq = 0;
        let mut epoch = 0;
        let mut recovery = None;
        let wal = match &config.durability {
            Some(d) => {
                let recovered = recover(&d.dir)?;
                let mut report = RecoveryReport {
                    from_checkpoint: false,
                    checkpoint_seq: 0,
                    replayed_windows: 0,
                    resumed_window_seq: recovered.resumed_window_seq(),
                    resumed_epoch: 0,
                    dropped_tail_bytes: recovered.dropped_tail_bytes,
                    recovery_time: Duration::ZERO,
                };
                if let Some(ckpt) = recovered.checkpoint {
                    report.from_checkpoint = true;
                    report.checkpoint_seq = ckpt.window_seq;
                    window_seq = ckpt.window_seq;
                    applied_seq = ckpt.applied_seq;
                    epoch = ckpt.epoch;
                    engine
                        .restore_state(ckpt.graph, ckpt.store, ckpt.topology_epoch)
                        .map_err(ServeError::Engine)?;
                }
                for frame in &recovered.frames {
                    if !frame.batch.is_empty() {
                        engine
                            .process_batch(&frame.batch)
                            .map_err(ServeError::Engine)?;
                    }
                    report.replayed_windows += 1;
                    window_seq = frame.window_seq;
                    applied_seq = frame.applied_seq;
                    epoch = frame.epoch;
                }
                report.resumed_epoch = epoch;
                report.recovery_time = started.elapsed();
                recovery = Some(report);
                Some(WalWriter::open(
                    &d.dir,
                    window_seq + 1,
                    d.segment_bytes,
                    d.fsync,
                    d.fail_points.clone(),
                )?)
            }
            None => None,
        };
        let (publisher, reader) = VersionedStore::bootstrap_at(
            engine.current_store(),
            epoch,
            applied_seq,
            0,
            engine.topology_epoch(),
        );
        let flush_log = config.record_batches.then(FlushLog::new);
        let index = config
            .index
            .map(|params| IndexMaintainer::bootstrap(engine.current_store(), None, params).0);
        // Concurrent admission needs the model (to footprint windows) and
        // per-batch dirty rows (to partition the merged pass's dirty set
        // back per window); an engine without either serves serially.
        let admission =
            (config.admission.enabled && engine.model().is_some() && engine.dirty_rows().is_some())
                .then(|| AdmissionController::new(config.admission.max_inflight));
        Ok((
            UpdateScheduler {
                engine,
                publisher,
                index,
                config,
                metrics,
                window: Coalescer::default(),
                applied_seq,
                window_seq,
                wal,
                recovery,
                flush_log,
                admission,
            },
            reader,
        ))
    }

    /// What recovery did at session start (present iff
    /// [`ServeConfig::durability`]).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery.clone()
    }

    /// The shared flush log (present iff [`ServeConfig::record_batches`]).
    pub fn flush_log(&self) -> Option<FlushLog> {
        self.flush_log.clone()
    }

    /// A reader handle onto the maintained top-k index (present iff
    /// [`ServeConfig::index`]).
    pub fn index_reader(&self) -> Option<IndexReader> {
        self.index.as_ref().map(IndexMaintainer::reader)
    }

    /// The shared index-maintenance counters (present iff
    /// [`ServeConfig::index`]).
    pub fn shared_index_stats(&self) -> Option<Arc<SharedIndexStats>> {
        self.index.as_ref().map(IndexMaintainer::shared_stats)
    }

    /// Absorbs one update into the coalescing window and flushes if the
    /// size window closed. Returns the published epoch if a flush happened.
    ///
    /// With concurrent admission on, a closed size window *stages* instead
    /// of committing: epochs publish only when the staged group drains (on
    /// a footprint conflict, a full in-flight set, a time window, or an
    /// explicit flush), so the returned epoch is `None` while windows ride
    /// in the group.
    pub fn absorb(&mut self, update: GraphUpdate, enqueued: Instant) -> crate::Result<Option<u64>> {
        self.window.push(
            QueuedUpdate {
                update,
                enqueued,
                secondary: false,
            },
            &self.metrics,
        );
        if self.window.raw_len() >= self.config.max_batch as u64 {
            if self.admission.is_some() {
                let drained = self.stage_window()?;
                if self.admission.as_ref().is_some_and(|c| c.is_full()) {
                    return self.drain_staged().map(Some);
                }
                return Ok(drained);
            }
            return self.flush().map(Some);
        }
        Ok(None)
    }

    /// Flushes the pending window: applies the coalesced batch through the
    /// engine, publishes the next epoch and records metrics. With an empty
    /// window this publishes nothing and returns the current epoch.
    ///
    /// Publication threads the flush window's affected set (the engine's
    /// per-batch dirty rows) into the publisher, so steady-state epoch
    /// refreshes copy O(affected) rows instead of the full store; a window
    /// that cancelled out entirely publishes with an empty dirty set.
    pub fn flush(&mut self) -> crate::Result<u64> {
        if self.admission.is_some() {
            // Stage the pending window (if any), then commit everything
            // in flight: an explicit flush promises full visibility.
            self.stage_window()?;
            return self.drain_staged();
        }
        if self.window.raw_len() == 0 {
            return Ok(self.publisher.epoch());
        }
        let (batch, raw, _secondary, enqueues) = self.window.drain();
        let ran_engine = !batch.is_empty();
        // Log before apply. The frame records the *post*-window counters —
        // all deterministic functions of the pre-state and the batch (the
        // engine bumps the topology epoch exactly once per non-empty
        // batch) — so recovery replay lands on the same stamps without
        // re-deriving them.
        self.window_seq += 1;
        if let Some(wal) = &mut self.wal {
            wal.append(&WalFrame {
                window_seq: self.window_seq,
                epoch: self.publisher.epoch() + 1,
                applied_seq: self.applied_seq + raw,
                applied_secondary: 0,
                topology_epoch: self.engine.topology_epoch() + u64::from(ran_engine),
                raw,
                batch: batch.clone(),
                halos: Vec::new(),
                halo_sources: Vec::new(),
            })?;
        }
        if ran_engine {
            if let Err(e) = self.engine.process_batch(&batch) {
                self.metrics.record_engine_error();
                return Err(ServeError::Engine(e));
            }
        }
        self.applied_seq += raw;
        let topology_epoch = self.engine.topology_epoch();
        let dirty: Option<&[VertexId]> = if ran_engine {
            self.engine.dirty_rows()
        } else {
            // Nothing reached the engine: the store is unchanged.
            Some(&[])
        };
        // Index first, store second: a reader that pairs the freshest store
        // with its cached index only ever sees an index *ahead* of the
        // store, never behind — and scores always come from the store, so
        // skew costs at most recall, never correctness.
        if let Some(index) = &mut self.index {
            index.publish(self.engine.current_store(), dirty);
        }
        let epoch = self.publisher.publish_rows(
            self.engine.current_store(),
            self.applied_seq,
            topology_epoch,
            dirty,
        );
        let published_at = Instant::now();
        for enqueued in enqueues {
            self.metrics
                .record_visibility_lag(published_at.saturating_duration_since(enqueued));
        }
        self.metrics.record_flush(raw, ran_engine);
        if let Some(log) = &self.flush_log {
            log.push(FlushRecord {
                window_seq: self.window_seq,
                batch,
                halos: Vec::new(),
                raw,
                epoch,
                applied_seq: self.applied_seq,
                topology_epoch,
            });
        }
        if let Some(d) = &self.config.durability {
            if d.fail_points.fire(FP_AFTER_PUBLISH) {
                return Err(ServeError::Wal(format!(
                    "fail point {FP_AFTER_PUBLISH} fired after epoch {epoch} was published"
                )));
            }
            if d.checkpoint_every > 0 && self.window_seq.is_multiple_of(d.checkpoint_every) {
                // Streamed straight from the engine's live graph and store:
                // no clones of either on the scheduler thread.
                write_checkpoint_ref(
                    &d.dir,
                    &CheckpointRef {
                        window_seq: self.window_seq,
                        epoch,
                        applied_seq: self.applied_seq,
                        applied_secondary: 0,
                        topology_epoch,
                        graph: self.engine.current_graph(),
                        store: self.engine.current_store(),
                        halo_watermarks: &[],
                    },
                    d.fsync,
                    &d.fail_points,
                )?;
            }
        }
        Ok(epoch)
    }

    /// Closes the pending coalescing window and reserves it with the
    /// admission controller: footprint it against the live topology,
    /// WAL-append it (unsynced — the group fsyncs once at drain), predict
    /// its post-commit counters and stage it. A window that conflicts with
    /// the in-flight set first forces the staged group to commit (the
    /// window is *serialized* behind it) and is then re-footprinted against
    /// the post-commit topology; the epoch such a forced drain published is
    /// returned.
    fn stage_window(&mut self) -> crate::Result<Option<u64>> {
        if self.window.raw_len() == 0 {
            return Ok(None);
        }
        let (batch, raw, _secondary, enqueues) = self.window.drain();
        let mut footprint = {
            let model = self
                .engine
                .model()
                .expect("admission is gated on an exposed model");
            Footprint::for_batch(self.engine.current_graph(), model, &batch)
        };
        let conflicted = {
            let ctl = self
                .admission
                .as_ref()
                .expect("stage_window without admission");
            !ctl.admits(&footprint)
        };
        if conflicted {
            self.metrics.record_conflict();
        }
        let must_drain = conflicted || self.admission.as_ref().expect("checked above").is_full();
        let mut drained = None;
        if must_drain {
            drained = Some(self.drain_staged()?);
            if conflicted {
                // The drained group committed the very writes this window's
                // cone intersects, and edges it added can extend that cone —
                // so the pre-drain footprint is stale. Re-footprint against
                // the post-commit topology before reserving, or a later
                // window overlapping the grown cone would be judged
                // disjoint and merged. The is_full drain needs no recompute:
                // an *admitted* window is disjoint from every staged write
                // set, so its cone cannot reach the edges the group added.
                let model = self.engine.model().expect("checked above");
                footprint = Footprint::for_batch(self.engine.current_graph(), model, &batch);
            }
        }
        // Predict the post-commit stamps by chaining off the last staged
        // window (or the live counters when the group is empty): each
        // window publishes one epoch, applies `raw` more updates, and bumps
        // the topology epoch iff its batch reaches the engine. The WAL
        // frame records these exact stamps, so recovery replay lands on
        // them without re-deriving anything.
        let ctl = self.admission.as_ref().expect("checked above");
        let (base_epoch, base_applied, base_topo) = match ctl.last() {
            Some(w) => (
                w.payload.epoch,
                w.payload.applied_seq,
                w.payload.topology_epoch,
            ),
            None => (
                self.publisher.epoch(),
                self.applied_seq,
                self.engine.topology_epoch(),
            ),
        };
        self.window_seq += 1;
        let commit = WindowCommit {
            epoch: base_epoch + 1,
            applied_seq: base_applied + raw,
            topology_epoch: base_topo + u64::from(!batch.is_empty()),
            batch,
            raw,
            enqueues,
        };
        if let Some(wal) = &mut self.wal {
            wal.append_unsynced(&WalFrame {
                window_seq: self.window_seq,
                epoch: commit.epoch,
                applied_seq: commit.applied_seq,
                applied_secondary: 0,
                topology_epoch: commit.topology_epoch,
                raw: commit.raw,
                batch: commit.batch.clone(),
                halos: Vec::new(),
                halo_sources: Vec::new(),
            })?;
        }
        self.admission
            .as_mut()
            .expect("checked above")
            .reserve(StagedWindow::pending(self.window_seq, footprint, commit));
        Ok(drained)
    }

    /// Executes and commits the staged group: one fsync covering every
    /// frame the group appended, one merged engine pass over the batches
    /// (bit-identical to sequential passes because the group is pairwise
    /// footprint-disjoint), then per-window epoch publication in
    /// `window_seq` order — each window's dirty set recovered by
    /// intersecting the merged dirty set with its write footprint. Returns
    /// the last published epoch (the current epoch if nothing was staged).
    fn drain_staged(&mut self) -> crate::Result<u64> {
        let mut group = match self.admission.as_mut() {
            Some(ctl) if !ctl.is_empty() => ctl.take_group(),
            _ => return Ok(self.publisher.epoch()),
        };
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
        }
        let batches: Vec<UpdateBatch> = group
            .iter_mut()
            .map(|w| std::mem::replace(&mut w.payload.batch, UpdateBatch::new()))
            .collect();
        let merged_dirty = match self.engine.process_windows(&batches) {
            Ok(dirty) => dirty.expect("admission is gated on dirty-row tracking"),
            Err(e) => {
                self.metrics.record_engine_error();
                return Err(ServeError::Engine(e));
            }
        };
        let first_seq = group.first().map(StagedWindow::seq).unwrap_or(0);
        let last_seq = group.last().map(StagedWindow::seq).unwrap_or(0);
        let mut scratch: Vec<VertexId> = Vec::new();
        let mut epoch = self.publisher.epoch();
        for (window, batch) in group.iter_mut().zip(batches) {
            let ran_engine = !batch.is_empty();
            self.applied_seq = window.payload.applied_seq;
            // This window's share of the merged dirty set. Rows outside it
            // keep their previous-epoch values in the snapshot — exactly
            // the serial schedule's state, because disjointness means no
            // later group member wrote inside this window's footprint.
            scratch.clear();
            window
                .footprint()
                .intersect_sorted_into(&merged_dirty, &mut scratch);
            let dirty: &[VertexId] = if ran_engine { &scratch } else { &[] };
            if let Some(index) = &mut self.index {
                index.publish(self.engine.current_store(), Some(dirty));
            }
            epoch = self.publisher.publish_rows(
                self.engine.current_store(),
                self.applied_seq,
                window.payload.topology_epoch,
                Some(dirty),
            );
            debug_assert_eq!(epoch, window.payload.epoch, "predicted epoch drifted");
            let published_at = Instant::now();
            for enqueued in window.payload.enqueues.drain(..) {
                self.metrics
                    .record_visibility_lag(published_at.saturating_duration_since(enqueued));
            }
            self.metrics.record_flush(window.payload.raw, ran_engine);
            if let Some(log) = &self.flush_log {
                log.push(FlushRecord {
                    window_seq: window.seq(),
                    batch,
                    halos: Vec::new(),
                    raw: window.payload.raw,
                    epoch,
                    applied_seq: self.applied_seq,
                    topology_epoch: window.payload.topology_epoch,
                });
            }
            window.commit();
        }
        debug_assert_eq!(
            self.engine.topology_epoch(),
            group
                .last()
                .map(|w| w.payload.topology_epoch)
                .unwrap_or_else(|| self.engine.topology_epoch()),
            "predicted topology epoch drifted"
        );
        self.metrics.record_admission_group(group.len() as u64);
        if let Some(d) = &self.config.durability {
            if d.fail_points.fire(FP_AFTER_PUBLISH) {
                return Err(ServeError::Wal(format!(
                    "fail point {FP_AFTER_PUBLISH} fired after epoch {epoch} was published"
                )));
            }
            // One checkpoint per group at most, cut iff the group crossed a
            // cadence boundary (seq/every strictly grew across the group).
            if d.checkpoint_every > 0
                && last_seq / d.checkpoint_every > first_seq.saturating_sub(1) / d.checkpoint_every
            {
                write_checkpoint_ref(
                    &d.dir,
                    &CheckpointRef {
                        window_seq: last_seq,
                        epoch,
                        applied_seq: self.applied_seq,
                        applied_secondary: 0,
                        topology_epoch: self.engine.topology_epoch(),
                        graph: self.engine.current_graph(),
                        store: self.engine.current_store(),
                        halo_watermarks: &[],
                    },
                    d.fsync,
                    &d.fail_points,
                )?;
            }
        }
        Ok(epoch)
    }

    /// Consumes the scheduler, returning the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Drains the queue until every client hangs up or a stop message
    /// arrives, flushing on the size and time windows.
    fn run(mut self, rx: Receiver<Msg>) -> Result<E, ServeError> {
        loop {
            // The time window bounds both the pending coalescing window and
            // (with admission on) the oldest staged-but-uncommitted window:
            // no accepted update waits longer than `max_delay` to publish.
            let deadline = match (
                self.window.deadline(self.config.max_delay),
                self.admission
                    .as_ref()
                    .and_then(|c| c.deadline(self.config.max_delay)),
            ) {
                (Some(w), Some(a)) => Some(w.min(a)),
                (w, a) => w.or(a),
            };
            let wake = match deadline {
                Some(deadline) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(budget) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            self.flush()?;
                            return Ok(self.engine);
                        }
                    }
                }
                None => match rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => return Ok(self.engine),
                },
            };
            match wake {
                Some(Msg::Update(queued)) => {
                    let enqueued = queued.enqueued;
                    self.absorb(queued.update, enqueued)?;
                }
                Some(Msg::Flush(ack)) => {
                    let epoch = self.flush()?;
                    // The caller may have given up waiting; ignore that.
                    let _ = ack.send(epoch);
                }
                Some(Msg::Stop) => {
                    self.flush()?;
                    return Ok(self.engine);
                }
                // Time window expired.
                None => {
                    self.flush()?;
                }
            }
        }
    }
}

/// Handle onto a running serving session: produces clients and query
/// services, exposes metrics, and shuts the scheduler down.
#[derive(Debug)]
pub struct ServeHandle<E> {
    tx: SyncSender<Msg>,
    submitted: Arc<AtomicU64>,
    metrics: Arc<ServeMetrics>,
    reader: SnapshotReader,
    index_reader: Option<IndexReader>,
    index_stats: Option<Arc<SharedIndexStats>>,
    policy: BackpressurePolicy,
    flush_log: Option<FlushLog>,
    recovery: Option<RecoveryReport>,
    /// The scheduler thread parks its terminal error here before exiting,
    /// so [`ServeFrontend::quiesce`](crate::ServeFrontend) callers get the
    /// typed failure instead of a bare "scheduler gone".
    failure: Arc<Mutex<Option<ServeError>>>,
    join: JoinHandle<Result<E, ServeError>>,
}

impl<E> ServeHandle<E> {
    /// A new producer handle.
    pub fn client(&self) -> UpdateClient {
        UpdateClient {
            tx: self.tx.clone(),
            submitted: Arc::clone(&self.submitted),
            metrics: Arc::clone(&self.metrics),
            policy: self.policy,
        }
    }

    /// A new query handle (each reader thread should own one).
    pub fn query_service(&self) -> crate::QueryService {
        crate::QueryService::new(
            self.reader.clone(),
            self.index_reader.clone(),
            Arc::clone(&self.submitted),
            Arc::clone(&self.metrics),
        )
    }

    /// The shared serving metrics.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A snapshot of the index-maintenance counters (`None` when the
    /// session runs without an index).
    pub fn index_stats(&self) -> Option<IndexStats> {
        self.index_stats.as_ref().map(|s| s.snapshot())
    }

    /// Forces the current window closed and waits for the resulting epoch
    /// (the current epoch if nothing was pending). Returns `None` once the
    /// scheduler has stopped.
    pub fn flush(&self) -> Option<u64> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx.send(Msg::Flush(ack_tx)).ok()?;
        ack_rx.recv().ok()
    }

    /// The flush log (present iff [`ServeConfig::record_batches`]); cloned
    /// so it stays readable after [`ServeHandle::shutdown`].
    pub fn flush_log(&self) -> Option<FlushLog> {
        self.flush_log.clone()
    }

    /// The flush log as its raw shared vector.
    #[deprecated(since = "0.1.0", note = "use `ServeHandle::flush_log` instead")]
    pub fn flush_log_arc(&self) -> Option<Arc<Mutex<Vec<FlushRecord>>>> {
        #[allow(deprecated)]
        self.flush_log.clone().map(FlushLog::into_arc)
    }

    /// What recovery did at session start (present iff the session was
    /// spawned with [`ServeConfig::durability`]).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery.clone()
    }

    /// The terminal error the scheduler thread stopped on, if it has
    /// stopped abnormally (engine failure, WAL failure, or panic).
    pub fn failure(&self) -> Option<ServeError> {
        self.failure
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Flushes the remaining window, stops the scheduler thread and returns
    /// the engine (with every accepted update applied).
    ///
    /// # Errors
    ///
    /// The typed terminal failure when the scheduler stopped abnormally:
    /// [`ServeError::Engine`] for an engine failure, [`ServeError::Wal`]
    /// for a durability failure, [`ServeError::SchedulerPanicked`] for a
    /// caught panic.
    pub fn shutdown(self) -> Result<E, ServeError> {
        // The scheduler may already be gone (engine error); join either way.
        let _ = self.tx.send(Msg::Stop);
        let failure = self.failure();
        match self.join.join() {
            Ok(result) => result,
            // `spawn` catches panics inside the thread, so a join error is
            // a panic that escaped the harness (e.g. in thread teardown).
            Err(_) => Err(failure.unwrap_or(ServeError::SchedulerPanicked)),
        }
    }
}

/// Spawns the serving scheduler for `engine` on a dedicated thread and
/// returns the session handle. The engine's current store is published as
/// epoch 0 — or, with [`ServeConfig::durability`] set, recovery runs first
/// and the recovered store is published at the recovered epoch — so queries
/// work immediately.
///
/// # Errors
///
/// [`ServeError::Wal`] / [`ServeError::Engine`] if durability recovery
/// fails (see [`UpdateScheduler::new`]). A session without durability
/// cannot fail to spawn.
pub fn spawn<E>(engine: E, config: ServeConfig) -> crate::Result<ServeHandle<E>>
where
    E: StreamingEngine + Send + 'static,
{
    let metrics = Arc::new(ServeMetrics::new());
    let submitted = Arc::new(AtomicU64::new(0));
    let queue_capacity = config.queue_capacity;
    let policy = config.policy;
    let (scheduler, reader) = UpdateScheduler::new(engine, config, Arc::clone(&metrics))?;
    let flush_log = scheduler.flush_log();
    let index_reader = scheduler.index_reader();
    let index_stats = scheduler.shared_index_stats();
    let recovery = scheduler.recovery_report();
    let failure: Arc<Mutex<Option<ServeError>>> = Arc::new(Mutex::new(None));
    let failure_slot = Arc::clone(&failure);
    let (tx, rx) = mpsc::sync_channel(queue_capacity.max(1));
    let join = std::thread::Builder::new()
        .name("ripple-serve-scheduler".to_string())
        .spawn(move || {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| scheduler.run(rx)))
                    .unwrap_or(Err(ServeError::SchedulerPanicked));
            if let Err(e) = &result {
                *failure_slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(e.clone());
            }
            result
        })
        .expect("spawning the scheduler thread");
    Ok(ServeHandle {
        tx,
        submitted,
        metrics,
        reader,
        index_reader,
        index_stats,
        policy,
        flush_log,
        recovery,
        failure,
        join,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_core::{RippleConfig, RippleEngine};
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::{EmbeddingStore, GnnModel, Workload};
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;
    use ripple_graph::DynamicGraph;

    fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
        let full = DatasetSpec::custom(120, 4.0, 6, 4).generate(seed).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 40,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let updates = plan
            .batches(1)
            .into_iter()
            .flat_map(UpdateBatch::into_updates)
            .collect();
        (plan.snapshot, model, store, updates)
    }

    fn engine(graph: DynamicGraph, model: GnnModel, store: EmbeddingStore) -> RippleEngine {
        RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap()
    }

    #[test]
    fn coalescer_keeps_last_feature_rewrite_in_place() {
        let metrics = ServeMetrics::new();
        let mut w = Coalescer::default();
        let now = Instant::now();
        let push = |w: &mut Coalescer, u: GraphUpdate| {
            w.push(
                QueuedUpdate {
                    update: u,
                    enqueued: now,
                    secondary: false,
                },
                &metrics,
            )
        };
        push(&mut w, GraphUpdate::update_feature(VertexId(1), vec![1.0]));
        push(&mut w, GraphUpdate::add_edge(VertexId(1), VertexId(2)));
        push(&mut w, GraphUpdate::update_feature(VertexId(1), vec![2.0]));
        let (batch, raw, secondary, enqueues) = w.drain();
        assert_eq!(raw, 3);
        assert_eq!(secondary, 0);
        assert_eq!(enqueues.len(), 3);
        assert_eq!(batch.len(), 2, "two rewrites collapse to one");
        assert_eq!(
            batch.updates()[0],
            GraphUpdate::update_feature(VertexId(1), vec![2.0]),
            "the surviving rewrite keeps the first occurrence's position"
        );
        assert_eq!(metrics.coalesced(), 1);
    }

    #[test]
    fn coalescer_cancels_add_then_delete_churn() {
        let metrics = ServeMetrics::new();
        let mut w = Coalescer::default();
        let now = Instant::now();
        let mut push = |u: GraphUpdate| {
            w.push(
                QueuedUpdate {
                    update: u,
                    enqueued: now,
                    secondary: false,
                },
                &metrics,
            )
        };
        push(GraphUpdate::add_edge(VertexId(0), VertexId(1)));
        push(GraphUpdate::delete_edge(VertexId(0), VertexId(1)));
        // Delete of an edge that predates the window must survive.
        push(GraphUpdate::delete_edge(VertexId(2), VertexId(3)));
        // Add after the cancelled pair is an independent new addition.
        push(GraphUpdate::add_edge(VertexId(0), VertexId(1)));
        let (batch, raw, _, _) = w.drain();
        assert_eq!(raw, 4);
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.updates()[0],
            GraphUpdate::delete_edge(VertexId(2), VertexId(3))
        );
        assert_eq!(
            batch.updates()[1],
            GraphUpdate::add_edge(VertexId(0), VertexId(1))
        );
        assert_eq!(metrics.coalesced(), 2);
    }

    #[test]
    fn coalesced_window_commits_the_same_embeddings_as_the_raw_stream() {
        let (graph, model, store, _) = bootstrap(3);
        // A churn-heavy window: feature rewrites and add/delete pairs.
        let raw = vec![
            GraphUpdate::update_feature(VertexId(4), vec![0.5; 6]),
            GraphUpdate::add_edge(VertexId(4), VertexId(90)),
            GraphUpdate::update_feature(VertexId(4), vec![1.0; 6]),
            GraphUpdate::add_edge(VertexId(5), VertexId(91)),
            GraphUpdate::delete_edge(VertexId(5), VertexId(91)),
            GraphUpdate::update_feature(VertexId(7), vec![0.25; 6]),
        ];

        // Reference: the raw window applied verbatim.
        let mut reference = engine(graph.clone(), model.clone(), store.clone());
        reference
            .process_batch(&UpdateBatch::from_updates(raw.clone()))
            .unwrap();

        // Serve path: the same window absorbed through the coalescer.
        let metrics = Arc::new(ServeMetrics::new());
        let (mut scheduler, _reader) = UpdateScheduler::new(
            engine(graph, model, store),
            ServeConfig {
                max_batch: 100,
                ..Default::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let now = Instant::now();
        for u in raw {
            scheduler.absorb(u, now).unwrap();
        }
        let epoch = scheduler.flush().unwrap();
        assert_eq!(epoch, 1);
        assert!(metrics.coalesced() >= 3);
        let served = scheduler.into_engine();
        let diff = served
            .store()
            .max_diff_all_layers(reference.store())
            .unwrap();
        assert!(
            diff < 1e-5,
            "coalescing drifted from the raw stream: {diff}"
        );
    }

    #[test]
    fn size_window_triggers_flush_inside_absorb() {
        let (graph, model, store, updates) = bootstrap(5);
        let metrics = Arc::new(ServeMetrics::new());
        let (mut scheduler, mut reader) = UpdateScheduler::new(
            engine(graph, model, store),
            ServeConfig {
                max_batch: 4,
                ..Default::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let now = Instant::now();
        let mut flushes = 0;
        for u in updates.iter().take(12).cloned() {
            if scheduler.absorb(u, now).unwrap().is_some() {
                flushes += 1;
            }
        }
        assert_eq!(flushes, 3, "12 updates at max_batch=4");
        assert_eq!(metrics.epochs(), 3);
        assert_eq!(metrics.applied(), 12);
        assert_eq!(reader.epoch(), 3);
        assert_eq!(reader.snapshot().applied_seq(), 12);
    }

    #[test]
    fn fully_cancelled_window_still_publishes_an_epoch() {
        let (graph, model, store, _) = bootstrap(7);
        let metrics = Arc::new(ServeMetrics::new());
        let (mut scheduler, mut reader) = UpdateScheduler::new(
            engine(graph, model, store),
            ServeConfig {
                max_batch: 100,
                ..Default::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let now = Instant::now();
        scheduler
            .absorb(GraphUpdate::add_edge(VertexId(0), VertexId(99)), now)
            .unwrap();
        scheduler
            .absorb(GraphUpdate::delete_edge(VertexId(0), VertexId(99)), now)
            .unwrap();
        let epoch = scheduler.flush().unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(metrics.batches(), 0, "no engine work for a no-op window");
        assert_eq!(metrics.applied(), 2, "raw updates still count as applied");
        assert_eq!(reader.snapshot().applied_seq(), 2);
        // Flushing an empty window is a no-op that reports the epoch.
        assert_eq!(scheduler.flush().unwrap(), 1);
    }

    #[test]
    fn spawned_scheduler_serves_submitted_updates() {
        let (graph, model, store, updates) = bootstrap(9);
        let reference_updates = updates.clone();
        let handle = spawn(
            engine(graph.clone(), model.clone(), store.clone()),
            ServeConfig {
                max_batch: 8,
                record_batches: true,
                ..Default::default()
            },
        )
        .unwrap();
        let client = handle.client();
        let offered = updates.len();
        assert!(offered > 0);
        let (accepted, last) = client.submit_all(updates);
        assert_eq!(accepted, offered);
        assert!(matches!(last, Submission::Enqueued { .. }));
        let epoch = handle.flush().expect("scheduler alive");
        assert!(epoch >= 1);

        let mut queries = handle.query_service();
        let stamped = queries.read_label(VertexId(0)).unwrap();
        assert!(stamped.epoch >= 1);

        let log = handle.flush_log().expect("recording enabled");
        let served = handle.shutdown().unwrap();

        // Metrics add up: every accepted update was applied.
        assert_eq!(served.graph().num_vertices(), graph.num_vertices());
        let records = log.snapshot();
        let raw_total: u64 = records.iter().map(|r| r.raw).sum();
        assert_eq!(raw_total, offered as u64);
        assert_eq!(records.last().unwrap().applied_seq, offered as u64);

        // The served engine matches a reference that replayed the same
        // flushed batches bit-for-bit…
        let mut reference = engine(graph.clone(), model.clone(), store.clone());
        for record in records.iter() {
            if !record.batch.is_empty() {
                reference.process_batch(&record.batch).unwrap();
            }
        }
        assert!(
            served.store() == reference.store(),
            "stores must be bit-identical"
        );

        // …and stays within float tolerance of the raw stream applied
        // update-by-update (window boundaries change accumulation order).
        let mut raw_reference = engine(graph, model, store);
        for update in reference_updates {
            raw_reference
                .process_batch(&UpdateBatch::from_updates(vec![update]))
                .unwrap();
        }
        let diff = served
            .store()
            .max_diff_all_layers(raw_reference.store())
            .unwrap();
        assert!(
            diff < 2e-3,
            "served state drifted from the raw stream: {diff}"
        );
    }

    #[test]
    fn engine_error_poisons_the_session() {
        let (graph, model, store, _) = bootstrap(11);
        let n = graph.num_vertices() as u32;
        let handle = spawn(
            engine(graph, model, store),
            ServeConfig {
                max_batch: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let client = handle.client();
        let metrics = handle.metrics();
        // An update for a vertex outside the graph fails inside the engine.
        client.submit(GraphUpdate::update_feature(VertexId(n + 7), vec![0.0; 6]));
        // The scheduler stops; later submissions observe the closed queue.
        let mut closed = false;
        for _ in 0..200 {
            match client.submit(GraphUpdate::add_edge(VertexId(0), VertexId(1))) {
                Submission::Closed => {
                    closed = true;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        assert!(closed, "submissions must observe the stopped scheduler");
        assert!(matches!(handle.shutdown(), Err(ServeError::Engine(_))));
        assert_eq!(metrics.engine_errors(), 1);
    }

    #[test]
    fn shed_policy_rejects_when_the_queue_is_full() {
        // Build a client over a queue with no consumer: capacity 2, shed.
        let metrics = Arc::new(ServeMetrics::new());
        let (tx, _rx) = mpsc::sync_channel(2);
        let client = UpdateClient {
            tx,
            submitted: Arc::new(AtomicU64::new(0)),
            metrics: Arc::clone(&metrics),
            policy: BackpressurePolicy::Shed,
        };
        let u = || GraphUpdate::add_edge(VertexId(0), VertexId(1));
        assert!(matches!(
            client.submit(u()),
            Submission::Enqueued { seq: 1 }
        ));
        assert!(matches!(
            client.submit(u()),
            Submission::Enqueued { seq: 2 }
        ));
        assert_eq!(client.submit(u()), Submission::Shed);
        assert_eq!(client.submit(u()), Submission::Shed);
        assert_eq!(metrics.shed(), 2);
        assert_eq!(metrics.enqueued(), 2);
    }

    #[test]
    fn builder_validates_and_clamps() {
        assert!(matches!(
            ServeConfig::builder().queue_capacity(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        assert!(matches!(
            ServeConfig::builder().max_batch(0).build(),
            Err(ServeError::InvalidConfig(_))
        ));
        let config = ServeConfig::builder()
            .max_delay(Duration::from_secs(3600))
            .policy(BackpressurePolicy::Shed)
            .record_batches(true)
            .build()
            .unwrap();
        assert_eq!(config.max_delay, ServeConfig::MAX_DELAY, "delay is clamped");
        assert_eq!(config.policy, BackpressurePolicy::Shed);
        assert!(config.record_batches);
        assert_eq!(
            ServeConfig::builder().build().unwrap(),
            ServeConfig::default()
        );
    }

    #[test]
    fn submissions_after_shutdown_are_closed() {
        let (graph, model, store, _) = bootstrap(13);
        let handle = spawn(engine(graph, model, store), ServeConfig::default()).unwrap();
        let client = handle.client();
        handle.shutdown().unwrap();
        assert_eq!(
            client.submit(GraphUpdate::add_edge(VertexId(0), VertexId(1))),
            Submission::Closed
        );
    }

    #[test]
    fn time_window_flushes_without_further_traffic() {
        let (graph, model, store, updates) = bootstrap(15);
        let handle = spawn(
            engine(graph, model, store),
            ServeConfig {
                max_batch: 1000, // size window never closes
                max_delay: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .unwrap();
        let client = handle.client();
        client.submit(updates[0].clone());
        let metrics = handle.metrics();
        let mut applied = 0;
        for _ in 0..500 {
            applied = metrics.applied();
            if applied == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(applied, 1, "time window must flush the lone update");
        assert!(metrics.report().max_visibility_lag >= Duration::from_millis(4));
        handle.shutdown().unwrap();
    }
}
