//! Durability for the serving tier: a write-ahead log of accepted update
//! windows, epoch-consistent checkpoints, and bit-identical crash recovery.
//!
//! The unit of durability is the coalesced flush window — exactly what the
//! scheduler already records as a `FlushRecord`. Every window the scheduler
//! accepts is appended to the WAL *before* the engine applies it, stamped
//! with the post-flush counters (`window_seq`, epoch, applied sequence,
//! topology epoch). Because the engines are deterministic functions of
//! (starting state, window sequence), replaying the logged windows from the
//! latest checkpoint reconstructs the exact pre-crash state: same embedding
//! bits, same adjacency order, same topology epoch. The repo's determinism
//! contracts (`serve_consistency`, `parallel_determinism`) are what make
//! that a testable property rather than a marketing claim.
//!
//! On-disk layout (one directory per engine; the sharded tier uses one
//! subdirectory per shard, `shard-{p}/`):
//!
//! ```text
//! wal-{seq:020}.log   an 8-byte format tag ([`WAL_MAGIC`]) followed by
//!                     length-prefixed, CRC-checksummed frames; the name is
//!                     the window_seq of the segment's first frame; segments
//!                     rotate at `segment_bytes`
//! ckpt-{seq:020}.bin  full graph + embedding store at window_seq == seq,
//!                     written to a temp file and atomically renamed
//! ```
//!
//! A frame is `[len: u32][crc32(payload): u32][payload]`. A torn or
//! truncated tail (short header, short payload, or checksum mismatch) marks
//! the end of the durable prefix: everything before it is replayed,
//! everything from it on is dropped, and the writer truncates the torn
//! bytes before appending again. Checkpoints validate the same way; a
//! corrupt newest checkpoint falls back to the previous one (the WAL is
//! only pruned up to the *retained* checkpoint horizon).
//!
//! Both encodings are versioned: the segment tag and the checkpoint magic
//! change whenever the payload shape changes, and readers *refuse* data
//! carrying a recognised-but-retired tag instead of misparsing it as a
//! torn tail. Durable state from an older binary is never silently
//! discarded as corruption — recovery fails loudly and names the file.
//!
//! Crash injection for the chaos harness goes through [`FailPoints`]: the
//! WAL append, checkpoint and post-publish paths consult a shared registry
//! so kills land *between* and *inside* the critical sections (including a
//! deliberately torn half-written frame).

use crate::scheduler::ServeError;
use ripple_core::DeltaMessage;
use ripple_gnn::EmbeddingStore;
use ripple_graph::{DynamicGraph, GraphUpdate, PartitionId, UpdateBatch, VertexId};
use ripple_tensor::Matrix;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fail point consulted immediately before a WAL append writes any bytes:
/// the window is lost entirely (never became durable).
pub const FP_WAL_BEFORE_APPEND: &str = "wal.append.before";
/// Fail point that tears the frame mid-write: the header and roughly half
/// the payload reach the file, then the append fails. Recovery must detect
/// the torn frame by checksum and drop it.
pub const FP_WAL_TORN_APPEND: &str = "wal.append.torn";
/// Fail point consulted after the frame is appended (durable up to the
/// fsync policy) but before the engine applies the window: recovery must
/// replay a window the crashed process never published.
pub const FP_WAL_AFTER_APPEND: &str = "wal.append.after";
/// Fail point consulted after the epoch is published but before a due
/// checkpoint is taken (kills between the publish and checkpoint sections).
pub const FP_AFTER_PUBLISH: &str = "publish.after";
/// Fail point that abandons a checkpoint half-written: the temp file is
/// left behind and never renamed, so recovery must ignore it.
pub const FP_CKPT_MID: &str = "checkpoint.mid";

/// When the WAL writer calls `fsync` (well, `fdatasync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every appended frame: a window acknowledged to the log is
    /// durable against power loss, at the cost of one sync per flush.
    #[default]
    Always,
    /// Never sync explicitly; durability is limited to what the OS page
    /// cache has written back. Survives process kills (the chaos harness's
    /// threat model) but not power loss.
    Never,
}

/// Shared, armable crash-injection registry. Cloning shares the registry;
/// the chaos harness holds one side and the serving session's WAL,
/// checkpoint and publish paths consult the other.
///
/// A site armed with `after_hits = n` lets `n` calls pass and fires on call
/// `n + 1`; firing disarms the site, so a recovered session does not
/// immediately die at the same point.
#[derive(Debug, Clone, Default)]
pub struct FailPoints {
    inner: Arc<Mutex<HashMap<&'static str, u64>>>,
}

impl FailPoints {
    /// Creates an empty (never-firing) registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `site` to fire after letting `after_hits` consultations pass.
    pub fn arm(&self, site: &'static str, after_hits: u64) {
        self.lock().insert(site, after_hits);
    }

    /// Disarms every site.
    pub fn disarm_all(&self) {
        self.lock().clear();
    }

    /// Whether any site is currently armed.
    pub fn armed(&self) -> bool {
        !self.lock().is_empty()
    }

    /// Consults `site`: returns `true` exactly when the armed hit count is
    /// exhausted (and disarms it). Unarmed sites always return `false`.
    pub fn fire(&self, site: &'static str) -> bool {
        let mut map = self.lock();
        match map.get_mut(site) {
            Some(0) => {
                map.remove(site);
                true
            }
            Some(hits) => {
                *hits -= 1;
                false
            }
            None => false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, u64>> {
        // A panic while holding this lock cannot leave the map
        // inconsistent (single-key updates), so poisoning is ignorable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Durability configuration carried inside `ServeConfig`. Equality ignores
/// the fail-point registry (it is test-only plumbing, not configuration).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and checkpoints. The sharded tier
    /// appends `shard-{p}/` per shard.
    pub dir: PathBuf,
    /// Take a checkpoint every this many logged windows (each logged window
    /// publishes exactly one epoch). `0` disables checkpoints: recovery
    /// then replays the WAL from the bootstrap state.
    pub checkpoint_every: u64,
    /// Fsync policy for WAL appends and checkpoint files.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh WAL segment once the current one reaches this many
    /// bytes.
    pub segment_bytes: u64,
    /// Crash-injection hooks (no-ops unless armed).
    pub fail_points: FailPoints,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with defaults: checkpoint every 64
    /// windows, fsync on every flush, 8 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 64,
            fsync: FsyncPolicy::default(),
            segment_bytes: 8 << 20,
            fail_points: FailPoints::new(),
        }
    }

    /// Sets the checkpoint cadence (in logged windows; `0` = never).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the WAL segment rotation threshold in bytes.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Installs a shared crash-injection registry.
    pub fn fail_points(mut self, points: FailPoints) -> Self {
        self.fail_points = points;
        self
    }

    /// The per-shard durability directory used by the sharded tier.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}"))
    }

    /// This configuration re-rooted at shard `shard`'s subdirectory.
    pub fn for_shard(&self, shard: usize) -> Self {
        let mut config = self.clone();
        config.dir = self.shard_dir(shard);
        config
    }

    /// Builds a configuration from the `RIPPLE_SERVE_WAL_DIR`,
    /// `RIPPLE_SERVE_CKPT_EVERY` and `RIPPLE_SERVE_FSYNC`
    /// (`always`/`never`) environment knobs. Returns `None` when no WAL
    /// directory is set.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var("RIPPLE_SERVE_WAL_DIR").ok()?;
        let mut config = DurabilityConfig::new(dir);
        if let Some(every) = std::env::var("RIPPLE_SERVE_CKPT_EVERY")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            config.checkpoint_every = every;
        }
        match std::env::var("RIPPLE_SERVE_FSYNC").as_deref() {
            Ok("never") => config.fsync = FsyncPolicy::Never,
            Ok("always") => config.fsync = FsyncPolicy::Always,
            _ => {}
        }
        Some(config)
    }
}

impl PartialEq for DurabilityConfig {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir
            && self.checkpoint_every == other.checkpoint_every
            && self.fsync == other.fsync
            && self.segment_bytes == other.segment_bytes
    }
}

/// One durable flush window: the post-flush counters plus the coalesced
/// batch (and, on the sharded tier, the halo deltas consumed with it).
///
/// The counters are the values the session holds *after* applying this
/// window — recovery resumes them from the last replayed frame. A frame
/// with an empty batch is a fully-cancelled window: it still advances
/// `window_seq` and publishes an epoch, which is exactly the ambiguity
/// `window_seq` exists to resolve (an absent sequence number is a skipped
/// flush; an empty batch is a logged one).
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// Monotone index of this logged window (1-based).
    pub window_seq: u64,
    /// Epoch published for this window.
    pub epoch: u64,
    /// Raw updates accepted through the end of this window.
    pub applied_seq: u64,
    /// Secondary (replicated halo-owner) updates through this window.
    pub applied_secondary: u64,
    /// Topology epoch after this window.
    pub topology_epoch: u64,
    /// Raw updates coalesced into this window.
    pub raw: u64,
    /// The coalesced updates, in application order.
    pub batch: UpdateBatch,
    /// Halo deltas applied with this window (sharded tier only).
    pub halos: Vec<DeltaMessage>,
    /// Provenance runs over `halos`: which sender shard shipped each
    /// consecutive run of deltas, and under which sender-side window
    /// sequence. Recovery rebuilds the receiver's per-sender dedup
    /// watermarks from these runs so a crashed sender re-shipping an
    /// in-flight window applies exactly once.
    pub halo_sources: Vec<HaloSource>,
}

/// One run of halo deltas inside a [`WalFrame`]: `count` consecutive
/// entries of `frame.halos` that arrived from shard `from` tagged with the
/// sender's `window_seq`. Runs appear in the same order as the deltas they
/// describe and their counts sum to `frame.halos.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloSource {
    /// Shard that produced the deltas.
    pub from: PartitionId,
    /// The sender's window sequence for the flush that produced them.
    pub window_seq: u64,
    /// Number of consecutive `halos` entries in this run.
    pub count: u32,
}

const FRAME_HEADER_BYTES: usize = 8;
/// Format tag opening every WAL segment. Version 2 added the
/// `halo_sources` provenance section to the frame payload; segments
/// without this tag (including v1 segments, which began directly with a
/// frame header) are rejected loudly rather than parsed as torn.
const WAL_MAGIC: &[u8; 8] = b"RPLWAL02";
const WAL_HEADER_BYTES: usize = 8;
/// Checkpoint magic. Version 2 added the `halo_watermarks` section.
const CKPT_MAGIC: &[u8; 8] = b"RPLCKPT2";
/// Magic of the retired v1 checkpoint encoding (no halo watermark
/// section). Recognised only so recovery can fail loudly instead of
/// skipping a durable checkpoint as corrupt.
const CKPT_MAGIC_V1: &[u8; 8] = b"RPLCKPT1";

/// CRC-32 (IEEE 802.3, reflected) — hand-rolled because the offline shim
/// set has no checksum crate. Bitwise, no table: WAL frames are small and
/// checkpoint writes are rare.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// Incremental CRC-32 state update (state starts at `0xFFFF_FFFF`, finish
/// with a bitwise NOT). Lets the streaming checkpoint writer checksum
/// without buffering the whole payload.
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc
}

/// A `Write` adapter that checksums everything passing through it. The
/// streaming checkpoint path writes straight to a `BufWriter<File>` through
/// this, so no payload-sized buffer ever exists in memory.
struct CrcWriter<W: Write> {
    inner: W,
    crc: u32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: 0xFFFF_FFFF,
        }
    }

    fn finish_crc(&self) -> u32 {
        !self.crc
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    put_u32(buf, v.to_bits());
}

/// Bounds-checked little-endian reader over a byte slice. Every decode
/// failure is reported as `None` and treated as corruption by callers.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f32(&mut self) -> Option<f32> {
        self.u32().map(f32::from_bits)
    }

    fn f32_vec(&mut self, len: usize) -> Option<Vec<f32>> {
        // Guard against corrupt lengths before allocating.
        if len > self.buf.len().saturating_sub(self.pos) / 4 {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_update(buf: &mut Vec<u8>, update: &GraphUpdate) {
    match update {
        GraphUpdate::AddEdge { src, dst, weight } => {
            buf.push(0);
            put_u32(buf, src.0);
            put_u32(buf, dst.0);
            put_f32(buf, *weight);
        }
        GraphUpdate::DeleteEdge { src, dst } => {
            buf.push(1);
            put_u32(buf, src.0);
            put_u32(buf, dst.0);
        }
        GraphUpdate::UpdateFeature { vertex, features } => {
            buf.push(2);
            put_u32(buf, vertex.0);
            put_u32(buf, features.len() as u32);
            for &x in features {
                put_f32(buf, x);
            }
        }
    }
}

fn read_update(cur: &mut Cursor<'_>) -> Option<GraphUpdate> {
    match cur.u8()? {
        0 => {
            let src = VertexId(cur.u32()?);
            let dst = VertexId(cur.u32()?);
            let weight = cur.f32()?;
            Some(GraphUpdate::AddEdge { src, dst, weight })
        }
        1 => {
            let src = VertexId(cur.u32()?);
            let dst = VertexId(cur.u32()?);
            Some(GraphUpdate::DeleteEdge { src, dst })
        }
        2 => {
            let vertex = VertexId(cur.u32()?);
            let len = cur.u32()? as usize;
            let features = cur.f32_vec(len)?;
            Some(GraphUpdate::UpdateFeature { vertex, features })
        }
        _ => None,
    }
}

fn read_matrix(cur: &mut Cursor<'_>) -> Option<Matrix> {
    let rows = cur.u32()? as usize;
    let cols = cur.u32()? as usize;
    let data = cur.f32_vec(rows.checked_mul(cols)?)?;
    Matrix::from_flat(rows, cols, data).ok()
}

/// Encodes a frame's payload (everything the checksum covers).
fn encode_payload(frame: &WalFrame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + frame.batch.len() * 16);
    put_u64(&mut buf, frame.window_seq);
    put_u64(&mut buf, frame.epoch);
    put_u64(&mut buf, frame.applied_seq);
    put_u64(&mut buf, frame.applied_secondary);
    put_u64(&mut buf, frame.topology_epoch);
    put_u64(&mut buf, frame.raw);
    put_u32(&mut buf, frame.batch.len() as u32);
    for update in frame.batch.iter() {
        put_update(&mut buf, update);
    }
    put_u32(&mut buf, frame.halos.len() as u32);
    for halo in &frame.halos {
        put_u32(&mut buf, halo.target.0);
        put_u32(&mut buf, halo.hop as u32);
        put_u32(&mut buf, halo.delta.len() as u32);
        for &x in &halo.delta {
            put_f32(&mut buf, x);
        }
    }
    put_u32(&mut buf, frame.halo_sources.len() as u32);
    for source in &frame.halo_sources {
        put_u32(&mut buf, source.from.0);
        put_u64(&mut buf, source.window_seq);
        put_u32(&mut buf, source.count);
    }
    buf
}

fn decode_payload(payload: &[u8]) -> Option<WalFrame> {
    let mut cur = Cursor::new(payload);
    let window_seq = cur.u64()?;
    let epoch = cur.u64()?;
    let applied_seq = cur.u64()?;
    let applied_secondary = cur.u64()?;
    let topology_epoch = cur.u64()?;
    let raw = cur.u64()?;
    let n_updates = cur.u32()? as usize;
    let mut updates = Vec::with_capacity(n_updates.min(payload.len()));
    for _ in 0..n_updates {
        updates.push(read_update(&mut cur)?);
    }
    let n_halos = cur.u32()? as usize;
    let mut halos = Vec::with_capacity(n_halos.min(payload.len()));
    for _ in 0..n_halos {
        let target = VertexId(cur.u32()?);
        let hop = cur.u32()? as usize;
        let len = cur.u32()? as usize;
        halos.push(DeltaMessage::new(target, hop, cur.f32_vec(len)?));
    }
    let n_sources = cur.u32()? as usize;
    let mut halo_sources = Vec::with_capacity(n_sources.min(payload.len()));
    let mut covered = 0u64;
    for _ in 0..n_sources {
        let source = HaloSource {
            from: PartitionId(cur.u32()?),
            window_seq: cur.u64()?,
            count: cur.u32()?,
        };
        covered += source.count as u64;
        halo_sources.push(source);
    }
    // Provenance runs must tile the halo list exactly; anything else is a
    // corrupt frame.
    if covered != halos.len() as u64 {
        return None;
    }
    if !cur.done() {
        return None;
    }
    Some(WalFrame {
        window_seq,
        epoch,
        applied_seq,
        applied_secondary,
        topology_epoch,
        raw,
        batch: UpdateBatch::from_updates(updates),
        halos,
        halo_sources,
    })
}

/// Encodes a frame exactly as it appears on disk: `[len][crc][payload]`.
/// Exposed so the torn-write tests can compute frame boundaries.
pub fn encode_frame(frame: &WalFrame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    put_u32(&mut buf, payload.len() as u32);
    put_u32(&mut buf, crc32(&payload));
    buf.extend_from_slice(&payload);
    buf
}

fn wal_err(context: &str, e: std::io::Error) -> ServeError {
    ServeError::Wal(format!("{context}: {e}"))
}

/// Rejects a segment whose leading bytes carry a format tag other than
/// [`WAL_MAGIC`]. A file shorter than the tag passes — that is a header
/// write torn at segment creation (no frame was ever durable in it), which
/// callers handle as an ordinary torn tail. A *wrong* tag means data from
/// a different encoding (e.g. a pre-versioned v1 segment, which began
/// directly with a frame header) and must fail loudly: truncating it as
/// corruption would silently discard durable state.
fn check_segment_format(path: &Path, bytes: &[u8]) -> crate::Result<()> {
    if bytes.len() >= WAL_HEADER_BYTES && &bytes[..WAL_HEADER_BYTES] != WAL_MAGIC {
        return Err(ServeError::Wal(format!(
            "WAL segment {} does not start with format tag {} — it was \
             written by an incompatible (likely older) version; refusing to \
             recover rather than drop durable frames as corruption",
            path.display(),
            String::from_utf8_lossy(WAL_MAGIC),
        )));
    }
    Ok(())
}

fn segment_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("wal-{start_seq:020}.log"))
}

fn checkpoint_path(dir: &Path, window_seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{window_seq:020}.bin"))
}

/// Lists files in `dir` matching `prefix`/`suffix`, sorted ascending by
/// name (which sorts by sequence number thanks to the zero padding).
fn list_sorted(dir: &Path, prefix: &str, suffix: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with(prefix) && n.ends_with(suffix))
                    .unwrap_or(false)
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    out.sort();
    out
}

/// Appends length-prefixed, checksummed frames to rotating segments.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    written: u64,
    segment_bytes: u64,
    fsync: FsyncPolicy,
    fail: FailPoints,
    segments_created: u64,
    syncs: u64,
}

impl WalWriter {
    /// Opens the WAL in `dir` for appending, with `next_seq` the sequence
    /// the next logged window will carry. If the newest existing segment
    /// ends in a torn frame, the torn bytes are truncated away so the next
    /// append starts on a clean frame boundary.
    pub fn open(
        dir: &Path,
        next_seq: u64,
        segment_bytes: u64,
        fsync: FsyncPolicy,
        fail: FailPoints,
    ) -> crate::Result<Self> {
        fs::create_dir_all(dir).map_err(|e| wal_err("creating WAL directory", e))?;
        let segments = list_sorted(dir, "wal-", ".log");
        let (file, written) = match segments.last() {
            Some(path) => {
                let bytes = fs::read(path).map_err(|e| wal_err("reading WAL segment", e))?;
                check_segment_format(path, &bytes)?;
                // Fewer than 8 bytes can only be a header write torn by a
                // crash at segment creation (no frame fit yet): restart the
                // segment. Otherwise resume after the last whole frame.
                let valid = if bytes.len() < WAL_HEADER_BYTES {
                    0
                } else {
                    WAL_HEADER_BYTES + valid_prefix_len(&bytes[WAL_HEADER_BYTES..])
                };
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| wal_err("opening WAL segment", e))?;
                file.set_len(valid as u64)
                    .map_err(|e| wal_err("truncating torn WAL tail", e))?;
                let mut file = file;
                use std::io::Seek;
                file.seek(std::io::SeekFrom::End(0))
                    .map_err(|e| wal_err("seeking WAL segment", e))?;
                if valid == 0 {
                    file.write_all(WAL_MAGIC)
                        .map_err(|e| wal_err("writing WAL segment header", e))?;
                    (file, WAL_HEADER_BYTES as u64)
                } else {
                    (file, valid as u64)
                }
            }
            None => {
                let mut file = File::create(segment_path(dir, next_seq))
                    .map_err(|e| wal_err("creating WAL segment", e))?;
                file.write_all(WAL_MAGIC)
                    .map_err(|e| wal_err("writing WAL segment header", e))?;
                (file, WAL_HEADER_BYTES as u64)
            }
        };
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            written,
            segment_bytes: segment_bytes.max(1),
            fsync,
            fail,
            segments_created: 0,
            syncs: 0,
        })
    }

    /// Appends one frame and makes it durable per the fsync policy. This is
    /// the serial path: one window, one (conditional) sync. An error here
    /// must poison the session: the frame may or may not be durable, and
    /// only recovery can tell.
    pub fn append(&mut self, frame: &WalFrame) -> crate::Result<()> {
        self.append_unsynced(frame)?;
        self.sync()
    }

    /// Appends one frame *without* syncing, honouring any armed fail
    /// points. The group-commit path under concurrent admission queues
    /// several staged windows through here and then issues a single
    /// [`WalWriter::sync`] for the whole group — one fsync covers every
    /// frame queued since the last sync.
    pub fn append_unsynced(&mut self, frame: &WalFrame) -> crate::Result<()> {
        if self.fail.fire(FP_WAL_BEFORE_APPEND) {
            return Err(ServeError::Wal(format!(
                "fail point {FP_WAL_BEFORE_APPEND} fired before window {}",
                frame.window_seq
            )));
        }
        if self.written >= self.segment_bytes {
            // Close out the old segment durably before rotating: a group
            // sync after rotation only reaches the new file descriptor.
            if self.fsync == FsyncPolicy::Always {
                self.file
                    .sync_data()
                    .map_err(|e| wal_err("syncing rotated WAL segment", e))?;
            }
            let mut file = File::create(segment_path(&self.dir, frame.window_seq))
                .map_err(|e| wal_err("rotating WAL segment", e))?;
            file.write_all(WAL_MAGIC)
                .map_err(|e| wal_err("writing WAL segment header", e))?;
            self.file = file;
            self.written = WAL_HEADER_BYTES as u64;
            self.segments_created += 1;
        }
        let bytes = encode_frame(frame);
        if self.fail.fire(FP_WAL_TORN_APPEND) {
            // Simulate a crash mid-write: half the frame reaches the disk.
            let torn = &bytes[..FRAME_HEADER_BYTES + (bytes.len() - FRAME_HEADER_BYTES) / 2];
            self.file
                .write_all(torn)
                .and_then(|_| self.file.sync_data())
                .map_err(|e| wal_err("tearing WAL frame", e))?;
            self.written += torn.len() as u64;
            return Err(ServeError::Wal(format!(
                "fail point {FP_WAL_TORN_APPEND} tore window {}",
                frame.window_seq
            )));
        }
        self.file
            .write_all(&bytes)
            .map_err(|e| wal_err("appending WAL frame", e))?;
        self.written += bytes.len() as u64;
        if self.fail.fire(FP_WAL_AFTER_APPEND) {
            return Err(ServeError::Wal(format!(
                "fail point {FP_WAL_AFTER_APPEND} fired after window {} was appended",
                frame.window_seq
            )));
        }
        Ok(())
    }

    /// Makes every frame appended since the last sync durable. A no-op
    /// under [`FsyncPolicy::Never`].
    pub fn sync(&mut self) -> crate::Result<()> {
        if self.fsync == FsyncPolicy::Always {
            self.file
                .sync_data()
                .map_err(|e| wal_err("syncing WAL frame", e))?;
            self.syncs += 1;
        }
        Ok(())
    }

    /// Number of segment rotations performed by this writer.
    pub fn segments_created(&self) -> u64 {
        self.segments_created
    }

    /// Number of explicit `fdatasync` calls issued (group commit batches
    /// several appends behind one of these).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// Length of the longest prefix of `bytes` that parses as whole, checksummed
/// frames.
fn valid_prefix_len(bytes: &[u8]) -> usize {
    let mut pos = 0;
    loop {
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER_BYTES) else {
            return pos;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(payload) = bytes.get(pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len)
        else {
            return pos;
        };
        if crc32(payload) != crc || decode_payload(payload).is_none() {
            return pos;
        }
        pos += FRAME_HEADER_BYTES + len;
    }
}

/// Result of scanning a WAL directory: the durable frames in order, plus
/// how many trailing bytes were dropped as torn/corrupt.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Valid frames, in log order.
    pub frames: Vec<WalFrame>,
    /// Bytes discarded at the tail (torn frame, short header, bad crc).
    pub dropped_tail_bytes: u64,
    /// Number of segment files scanned.
    pub segments: usize,
}

/// Reads every WAL segment in `dir` in order, stopping at the first
/// invalid frame (everything after a corruption point is untrusted).
pub fn read_wal(dir: &Path) -> crate::Result<WalScan> {
    let mut scan = WalScan::default();
    for path in list_sorted(dir, "wal-", ".log") {
        scan.segments += 1;
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| wal_err("reading WAL segment", e))?;
        check_segment_format(&path, &bytes)?;
        if bytes.len() < WAL_HEADER_BYTES {
            // Header write torn at segment creation: no frame in it was
            // ever durable, so this is an ordinary torn tail.
            scan.dropped_tail_bytes += bytes.len() as u64;
            break;
        }
        let body = &bytes[WAL_HEADER_BYTES..];
        let valid = valid_prefix_len(body);
        let mut pos = 0;
        while pos < valid {
            let len = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            let payload = &body[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
            // valid_prefix_len already proved this decodes.
            scan.frames
                .push(decode_payload(payload).expect("validated frame"));
            pos += FRAME_HEADER_BYTES + len;
        }
        if valid < body.len() {
            scan.dropped_tail_bytes += (body.len() - valid) as u64;
            break;
        }
    }
    Ok(scan)
}

/// An epoch-consistent snapshot of one engine's durable state, taken at a
/// window boundary: the full dynamic graph (both adjacency orders encoded
/// verbatim — edge replay cannot reproduce `swap_remove` list order), the
/// embedding store, and the counters the session holds at that boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Window sequence this checkpoint covers (frames with larger
    /// sequences replay on top of it).
    pub window_seq: u64,
    /// Published epoch at the boundary.
    pub epoch: u64,
    /// Raw updates applied through the boundary.
    pub applied_seq: u64,
    /// Secondary updates applied through the boundary (sharded tier).
    pub applied_secondary: u64,
    /// Topology epoch at the boundary.
    pub topology_epoch: u64,
    /// The engine's graph (for shards: the halo-restricted local graph).
    pub graph: DynamicGraph,
    /// The engine's embedding store.
    pub store: EmbeddingStore,
    /// Per-sender halo dedup watermarks at the boundary (sharded tier):
    /// the highest sender `window_seq` whose deltas are folded into this
    /// state, per peer shard. Restored so re-shipped in-flight deltas from
    /// a recovering peer are recognised as already applied even after the
    /// WAL frames carrying their provenance have been pruned.
    pub halo_watermarks: Vec<(PartitionId, u64)>,
}

impl Checkpoint {
    /// A borrowed view of this checkpoint, for the streaming write path.
    pub fn as_ref(&self) -> CheckpointRef<'_> {
        CheckpointRef {
            window_seq: self.window_seq,
            epoch: self.epoch,
            applied_seq: self.applied_seq,
            applied_secondary: self.applied_secondary,
            topology_epoch: self.topology_epoch,
            graph: &self.graph,
            store: &self.store,
            halo_watermarks: &self.halo_watermarks,
        }
    }
}

/// A borrowed checkpoint: same fields as [`Checkpoint`] but referencing the
/// engine's live (quiesced) graph and store instead of owning clones. The
/// scheduler checkpoints through this so the store — by far the largest
/// object in the session — is streamed to disk without ever being cloned.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointRef<'a> {
    /// Window sequence this checkpoint covers.
    pub window_seq: u64,
    /// Published epoch at the boundary.
    pub epoch: u64,
    /// Raw updates applied through the boundary.
    pub applied_seq: u64,
    /// Secondary updates applied through the boundary (sharded tier).
    pub applied_secondary: u64,
    /// Topology epoch at the boundary.
    pub topology_epoch: u64,
    /// The engine's graph.
    pub graph: &'a DynamicGraph,
    /// The engine's embedding store.
    pub store: &'a EmbeddingStore,
    /// Per-sender halo dedup watermarks (empty on the single-engine tier).
    pub halo_watermarks: &'a [(PartitionId, u64)],
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    write_u32(w, v.to_bits())
}

fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> std::io::Result<()> {
    write_u32(w, m.rows() as u32)?;
    write_u32(w, m.cols() as u32)?;
    for &x in m.as_slice() {
        write_f32(w, x)?;
    }
    Ok(())
}

/// Streams the checkpoint payload (everything the trailer checksum covers)
/// straight into `w`. This is the no-clone path: the graph and store are
/// borrowed, the matrices are walked in place, and the only buffering is
/// whatever `w` itself does (a `BufWriter` in practice).
fn write_checkpoint_payload<W: Write>(w: &mut W, ckpt: &CheckpointRef<'_>) -> std::io::Result<()> {
    write_u64(w, ckpt.window_seq)?;
    write_u64(w, ckpt.epoch)?;
    write_u64(w, ckpt.applied_seq)?;
    write_u64(w, ckpt.applied_secondary)?;
    write_u64(w, ckpt.topology_epoch)?;
    let n = ckpt.graph.num_vertices();
    write_u32(w, n as u32)?;
    write_matrix(w, ckpt.graph.features())?;
    write_u64(w, ckpt.graph.num_edges() as u64)?;
    for u in 0..n {
        let v = VertexId(u as u32);
        let neighbors = ckpt.graph.out_neighbors(v);
        let weights = ckpt.graph.out_weights(v);
        write_u32(w, neighbors.len() as u32)?;
        for (id, weight) in neighbors.iter().zip(weights) {
            write_u32(w, id.0)?;
            write_f32(w, *weight)?;
        }
    }
    for u in 0..n {
        let v = VertexId(u as u32);
        let neighbors = ckpt.graph.in_neighbors(v);
        let weights = ckpt.graph.in_weights(v);
        write_u32(w, neighbors.len() as u32)?;
        for (id, weight) in neighbors.iter().zip(weights) {
            write_u32(w, id.0)?;
            write_f32(w, *weight)?;
        }
    }
    let layers = ckpt.store.num_layers();
    write_u32(w, (layers + 1) as u32)?;
    for l in 0..=layers {
        write_matrix(w, ckpt.store.embeddings(l))?;
    }
    write_u32(w, layers as u32)?;
    for l in 1..=layers {
        write_matrix(w, ckpt.store.aggregates(l))?;
    }
    write_u32(w, ckpt.halo_watermarks.len() as u32)?;
    for (peer, seq) in ckpt.halo_watermarks {
        write_u32(w, peer.0)?;
        write_u64(w, *seq)?;
    }
    Ok(())
}

fn decode_checkpoint(payload: &[u8]) -> Option<Checkpoint> {
    let mut cur = Cursor::new(payload);
    let window_seq = cur.u64()?;
    let epoch = cur.u64()?;
    let applied_seq = cur.u64()?;
    let applied_secondary = cur.u64()?;
    let topology_epoch = cur.u64()?;
    let n = cur.u32()? as usize;
    let features = read_matrix(&mut cur)?;
    let num_edges = cur.u64()? as usize;
    type AdjacencyLists = (Vec<Vec<VertexId>>, Vec<Vec<f32>>);
    let read_adjacency = |cur: &mut Cursor<'_>| -> Option<AdjacencyLists> {
        let mut ids = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            let len = cur.u32()? as usize;
            let mut vs = Vec::with_capacity(len.min(payload.len()));
            let mut ws = Vec::with_capacity(len.min(payload.len()));
            for _ in 0..len {
                vs.push(VertexId(cur.u32()?));
                ws.push(cur.f32()?);
            }
            ids.push(vs);
            weights.push(ws);
        }
        Some((ids, weights))
    };
    let (out, out_weights) = read_adjacency(&mut cur)?;
    let (inn, in_weights) = read_adjacency(&mut cur)?;
    let graph = DynamicGraph::from_adjacency(out, out_weights, inn, in_weights, features).ok()?;
    if graph.num_edges() != num_edges {
        return None;
    }
    let n_embeddings = cur.u32()? as usize;
    let mut embeddings = Vec::with_capacity(n_embeddings.min(payload.len()));
    for _ in 0..n_embeddings {
        embeddings.push(read_matrix(&mut cur)?);
    }
    let n_aggregates = cur.u32()? as usize;
    let mut aggregates = Vec::with_capacity(n_aggregates.min(payload.len()));
    for _ in 0..n_aggregates {
        aggregates.push(read_matrix(&mut cur)?);
    }
    let n_watermarks = cur.u32()? as usize;
    let mut halo_watermarks = Vec::with_capacity(n_watermarks.min(payload.len()));
    for _ in 0..n_watermarks {
        let peer = PartitionId(cur.u32()?);
        let seq = cur.u64()?;
        halo_watermarks.push((peer, seq));
    }
    if !cur.done() {
        return None;
    }
    let store = EmbeddingStore::from_parts(embeddings, aggregates).ok()?;
    Some(Checkpoint {
        window_seq,
        epoch,
        applied_seq,
        applied_secondary,
        topology_epoch,
        graph,
        store,
        halo_watermarks,
    })
}

/// Writes an owned checkpoint durably. Thin wrapper over
/// [`write_checkpoint_ref`] for callers that already hold a [`Checkpoint`]
/// (recovery round-trip tests, mostly).
pub fn write_checkpoint(
    dir: &Path,
    ckpt: &Checkpoint,
    fsync: FsyncPolicy,
    fail: &FailPoints,
) -> crate::Result<()> {
    write_checkpoint_ref(dir, &ckpt.as_ref(), fsync, fail)
}

/// Writes a checkpoint durably from *borrowed* state: temp file, streamed
/// payload with a checksum trailer, fsync, atomic rename. Retains the
/// previous checkpoint as a fallback and prunes older ones plus any WAL
/// segments wholly covered by the retained horizon.
///
/// The payload is streamed through a CRC-tracking `BufWriter`, so the
/// scheduler can checkpoint its quiesced engine without cloning the graph
/// or the embedding store and without materialising a payload-sized buffer.
pub fn write_checkpoint_ref(
    dir: &Path,
    ckpt: &CheckpointRef<'_>,
    fsync: FsyncPolicy,
    fail: &FailPoints,
) -> crate::Result<()> {
    fs::create_dir_all(dir).map_err(|e| wal_err("creating checkpoint directory", e))?;
    let tmp = dir.join(format!("ckpt-{:020}.tmp", ckpt.window_seq));
    if fail.fire(FP_CKPT_MID) {
        // Crash mid-checkpoint: a torn temp file exists, no rename.
        let _ = fs::write(&tmp, CKPT_MAGIC);
        return Err(ServeError::Wal(format!(
            "fail point {FP_CKPT_MID} abandoned checkpoint {}",
            ckpt.window_seq
        )));
    }
    let file = File::create(&tmp).map_err(|e| wal_err("creating checkpoint temp file", e))?;
    let mut writer = CrcWriter::new(BufWriter::new(file));
    // The magic goes around the checksum, not under it.
    writer
        .inner
        .write_all(CKPT_MAGIC)
        .and_then(|_| write_checkpoint_payload(&mut writer, ckpt))
        .map_err(|e| wal_err("writing checkpoint", e))?;
    let crc = writer.finish_crc();
    let mut buffered = writer.inner;
    buffered
        .write_all(&crc.to_le_bytes())
        .map_err(|e| wal_err("writing checkpoint trailer", e))?;
    let file = buffered
        .into_inner()
        .map_err(|e| wal_err("flushing checkpoint", e.into_error()))?;
    if fsync == FsyncPolicy::Always {
        file.sync_data()
            .map_err(|e| wal_err("syncing checkpoint", e))?;
    }
    drop(file);
    fs::rename(&tmp, checkpoint_path(dir, ckpt.window_seq))
        .map_err(|e| wal_err("publishing checkpoint", e))?;
    prune(dir);
    Ok(())
}

/// Keeps the two newest checkpoints (newest + fallback), deletes older
/// ones, stale temp files, and WAL segments whose every frame is covered by
/// the *older* retained checkpoint. Best-effort: pruning failures are not
/// durability failures.
fn prune(dir: &Path) {
    let checkpoints = list_sorted(dir, "ckpt-", ".bin");
    if checkpoints.len() > 2 {
        for path in &checkpoints[..checkpoints.len() - 2] {
            let _ = fs::remove_file(path);
        }
    }
    for tmp in list_sorted(dir, "ckpt-", ".tmp") {
        let _ = fs::remove_file(tmp);
    }
    let floor = match checkpoints.iter().rev().nth(1).and_then(|p| file_seq(p)) {
        Some(seq) => seq,
        None => return,
    };
    let segments = list_sorted(dir, "wal-", ".log");
    for pair in segments.windows(2) {
        // Segment `pair[0]` only holds frames below `pair[1]`'s start; if
        // those are all <= floor the checkpoint fallback never needs them.
        match file_seq(&pair[1]) {
            Some(next_start) if next_start <= floor + 1 => {
                let _ = fs::remove_file(&pair[0]);
            }
            _ => {}
        }
    }
}

/// Extracts the zero-padded sequence number from a `wal-*.log` /
/// `ckpt-*.bin` file name.
fn file_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.split('-').nth(1)?.split('.').next()?;
    digits.parse().ok()
}

/// Loads the newest checkpoint that validates (magic, checksum, and a
/// fully consistent decode), falling back to older ones on corruption.
/// A checkpoint carrying a recognised *retired* magic is an error, not a
/// fallback: it is durable state from an incompatible binary, and skipping
/// it would silently recover an older world.
pub fn load_latest_checkpoint(dir: &Path) -> crate::Result<Option<Checkpoint>> {
    for path in list_sorted(dir, "ckpt-", ".bin").iter().rev() {
        let Ok(bytes) = fs::read(path) else { continue };
        if bytes.starts_with(CKPT_MAGIC_V1) {
            return Err(ServeError::Wal(format!(
                "checkpoint {} uses the retired {} encoding (no halo \
                 watermark section); refusing to skip durable state — \
                 recover it with the matching binary or remove it explicitly",
                path.display(),
                String::from_utf8_lossy(CKPT_MAGIC_V1),
            )));
        }
        let Some(rest) = bytes.strip_prefix(CKPT_MAGIC.as_slice()) else {
            continue;
        };
        if rest.len() < 4 {
            continue;
        }
        let (payload, crc_bytes) = rest.split_at(rest.len() - 4);
        if crc32(payload) != u32::from_le_bytes(crc_bytes.try_into().unwrap()) {
            continue;
        }
        if let Some(ckpt) = decode_checkpoint(payload) {
            return Ok(Some(ckpt));
        }
    }
    Ok(None)
}

/// Everything recovery needs: the newest valid checkpoint (if any) and the
/// WAL frames that extend past it, in replay order.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Latest valid checkpoint, if one exists.
    pub checkpoint: Option<Checkpoint>,
    /// Frames with `window_seq` beyond the checkpoint, strictly increasing.
    pub frames: Vec<WalFrame>,
    /// Torn/corrupt bytes dropped from the WAL tail.
    pub dropped_tail_bytes: u64,
}

impl RecoveredState {
    /// `true` when the directory held no durable state at all.
    pub fn is_empty(&self) -> bool {
        self.checkpoint.is_none() && self.frames.is_empty()
    }

    /// The window sequence recovery resumes after (0 = fresh start).
    pub fn resumed_window_seq(&self) -> u64 {
        self.frames
            .last()
            .map(|f| f.window_seq)
            .or_else(|| self.checkpoint.as_ref().map(|c| c.window_seq))
            .unwrap_or(0)
    }
}

/// Scans a durability directory: latest valid checkpoint plus the WAL tail
/// beyond it. Returns an empty state for a missing/fresh directory.
pub fn recover(dir: &Path) -> crate::Result<RecoveredState> {
    if !dir.exists() {
        return Ok(RecoveredState::default());
    }
    let checkpoint = load_latest_checkpoint(dir)?;
    let scan = read_wal(dir)?;
    let floor = checkpoint.as_ref().map(|c| c.window_seq).unwrap_or(0);
    let mut frames = Vec::new();
    let mut last = floor;
    for frame in scan.frames {
        // Frames at or below the checkpoint are already folded in; a
        // non-monotone sequence would mean a corrupt log we failed to
        // detect, so refuse to replay it.
        if frame.window_seq <= last {
            continue;
        }
        if frame.window_seq != last + 1 && last != floor {
            return Err(ServeError::Wal(format!(
                "WAL gap: window {} follows window {last}",
                frame.window_seq
            )));
        }
        last = frame.window_seq;
        frames.push(frame);
    }
    Ok(RecoveredState {
        checkpoint,
        frames,
        dropped_tail_bytes: scan.dropped_tail_bytes,
    })
}

/// What a recovered session did to get back to its pre-crash state.
/// Available from the serve handles via `recovery_report()`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Whether a checkpoint was restored (vs replay from bootstrap).
    pub from_checkpoint: bool,
    /// Window sequence of the restored checkpoint (0 if none).
    pub checkpoint_seq: u64,
    /// WAL frames replayed on top of the checkpoint.
    pub replayed_windows: u64,
    /// Window sequence the session resumed at.
    pub resumed_window_seq: u64,
    /// Epoch the session resumed publishing from.
    pub resumed_epoch: u64,
    /// Torn/corrupt bytes dropped from the WAL tail.
    pub dropped_tail_bytes: u64,
    /// Wall-clock time spent restoring + replaying.
    pub recovery_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, updates: Vec<GraphUpdate>) -> WalFrame {
        WalFrame {
            window_seq: seq,
            epoch: seq,
            applied_seq: seq * 3,
            applied_secondary: 0,
            topology_epoch: seq,
            raw: updates.len() as u64 + 1,
            batch: UpdateBatch::from_updates(updates),
            halos: vec![DeltaMessage::new(VertexId(2), 1, vec![0.5, -0.25])],
            halo_sources: vec![HaloSource {
                from: PartitionId(1),
                window_seq: seq,
                count: 1,
            }],
        }
    }

    fn sample_updates() -> Vec<GraphUpdate> {
        vec![
            GraphUpdate::add_weighted_edge(VertexId(0), VertexId(1), 0.75),
            GraphUpdate::delete_edge(VertexId(1), VertexId(2)),
            GraphUpdate::update_feature(VertexId(3), vec![1.0, -2.0, 0.125]),
        ]
    }

    #[test]
    fn frame_round_trips_bit_exactly() {
        let f = frame(7, sample_updates());
        let bytes = encode_frame(&f);
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        assert_eq!(len + FRAME_HEADER_BYTES, bytes.len());
        let decoded = decode_payload(&bytes[FRAME_HEADER_BYTES..]).expect("valid frame");
        assert_eq!(decoded, f);
    }

    #[test]
    fn crc_matches_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn corrupt_byte_is_rejected() {
        let f = frame(1, sample_updates());
        for pos in 0..encode_frame(&f).len() {
            let mut bytes = encode_frame(&f);
            bytes[pos] ^= 0x40;
            assert_eq!(
                valid_prefix_len(&bytes),
                0,
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let frames: Vec<WalFrame> = (1..=3).map(|s| frame(s, sample_updates())).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let last_len = encode_frame(&frames[2]).len();
        let boundary = bytes.len() - last_len;
        for cut in 0..bytes.len() {
            let valid = valid_prefix_len(&bytes[..cut]);
            if cut < boundary + last_len {
                assert!(valid <= boundary, "cut {cut} kept a torn frame");
            } else {
                assert_eq!(valid, bytes.len());
            }
        }
    }

    #[test]
    fn fail_points_count_down_and_disarm() {
        let points = FailPoints::new();
        assert!(!points.fire(FP_WAL_BEFORE_APPEND));
        points.arm(FP_WAL_BEFORE_APPEND, 2);
        assert!(!points.fire(FP_WAL_BEFORE_APPEND));
        assert!(!points.fire(FP_WAL_BEFORE_APPEND));
        assert!(points.fire(FP_WAL_BEFORE_APPEND));
        // Fired points disarm themselves.
        assert!(!points.fire(FP_WAL_BEFORE_APPEND));
        let clone = points.clone();
        clone.arm(FP_CKPT_MID, 0);
        assert!(points.armed(), "registry is shared across clones");
        assert!(points.fire(FP_CKPT_MID));
    }

    #[test]
    fn writer_rotates_segments_and_reader_reassembles() {
        let dir = test_dir("rotate");
        let mut writer =
            WalWriter::open(&dir, 1, 64, FsyncPolicy::Never, FailPoints::new()).unwrap();
        let frames: Vec<WalFrame> = (1..=9).map(|s| frame(s, sample_updates())).collect();
        for f in &frames {
            writer.append(f).unwrap();
        }
        assert!(
            writer.segments_created() >= 2,
            "64-byte segments must rotate"
        );
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.frames, frames);
        assert_eq!(scan.dropped_tail_bytes, 0);
        assert!(scan.segments >= 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_issues_one_fsync_per_group() {
        let dir = test_dir("group-sync");
        let mut writer =
            WalWriter::open(&dir, 1, u64::MAX, FsyncPolicy::Always, FailPoints::new()).unwrap();
        for seq in 1..=4 {
            writer
                .append_unsynced(&frame(seq, sample_updates()))
                .unwrap();
        }
        assert_eq!(writer.syncs(), 0, "staged appends must not sync one by one");
        writer.sync().unwrap();
        assert_eq!(writer.syncs(), 1, "one fsync covers the whole staged group");
        writer.append(&frame(5, sample_updates())).unwrap();
        assert_eq!(writer.syncs(), 2, "the serial path still syncs per window");
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 5);

        let never = test_dir("group-sync-never");
        let mut writer =
            WalWriter::open(&never, 1, u64::MAX, FsyncPolicy::Never, FailPoints::new()).unwrap();
        writer.append(&frame(1, sample_updates())).unwrap();
        writer.sync().unwrap();
        assert_eq!(writer.syncs(), 0, "Never policy issues no fsyncs at all");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&never);
    }

    #[test]
    fn reopened_writer_truncates_torn_tail() {
        let dir = test_dir("reopen");
        let points = FailPoints::new();
        let mut writer =
            WalWriter::open(&dir, 1, 1 << 20, FsyncPolicy::Always, points.clone()).unwrap();
        writer.append(&frame(1, sample_updates())).unwrap();
        points.arm(FP_WAL_TORN_APPEND, 0);
        assert!(matches!(
            writer.append(&frame(2, sample_updates())),
            Err(ServeError::Wal(_))
        ));
        drop(writer);
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert!(scan.dropped_tail_bytes > 0);
        // Reopening truncates the torn bytes and appends cleanly after.
        let mut writer =
            WalWriter::open(&dir, 2, 1 << 20, FsyncPolicy::Always, FailPoints::new()).unwrap();
        writer.append(&frame(2, sample_updates())).unwrap();
        let scan = read_wal(&dir).unwrap();
        assert_eq!(
            scan.frames.iter().map(|f| f.window_seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(scan.dropped_tail_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ripple-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A segment whose leading bytes are not the format tag — e.g. one
    /// written by the pre-versioned encoding, which began directly with a
    /// frame header — must fail recovery loudly, never be truncated away
    /// as a torn tail.
    #[test]
    fn unversioned_wal_segment_is_rejected_not_truncated() {
        let dir = test_dir("legacy-wal");
        fs::create_dir_all(&dir).unwrap();
        // Old-format layout: frames from byte 0, no segment tag.
        fs::write(
            segment_path(&dir, 1),
            encode_frame(&frame(1, sample_updates())),
        )
        .unwrap();
        let err = read_wal(&dir).expect_err("legacy segment must not scan");
        assert!(
            err.to_string().contains("incompatible"),
            "error must name the format mismatch: {err}"
        );
        recover(&dir).expect_err("recovery must surface the rejection");
        WalWriter::open(&dir, 2, u64::MAX, FsyncPolicy::Never, FailPoints::new())
            .expect_err("the writer must not truncate a legacy segment");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A header write torn at segment creation (fewer than tag-size bytes,
    /// no frame ever durable) is an ordinary torn tail: scanned as empty
    /// and reinitialised by the writer, not an error.
    #[test]
    fn torn_segment_header_is_recovered_as_empty() {
        let dir = test_dir("torn-header");
        fs::create_dir_all(&dir).unwrap();
        fs::write(segment_path(&dir, 1), &WAL_MAGIC[..3]).unwrap();
        let scan = read_wal(&dir).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.dropped_tail_bytes, 3);
        let mut writer =
            WalWriter::open(&dir, 1, u64::MAX, FsyncPolicy::Never, FailPoints::new()).unwrap();
        writer.append(&frame(1, sample_updates())).unwrap();
        assert_eq!(read_wal(&dir).unwrap().frames.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A checkpoint carrying the retired v1 magic is durable state from an
    /// incompatible binary: recovery must error, not fall back past it.
    #[test]
    fn v1_checkpoint_is_rejected_not_skipped() {
        let dir = test_dir("legacy-ckpt");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = CKPT_MAGIC_V1.to_vec();
        bytes.extend_from_slice(&[0u8; 32]);
        fs::write(checkpoint_path(&dir, 5), &bytes).unwrap();
        let err = load_latest_checkpoint(&dir).expect_err("v1 checkpoint must not be skipped");
        assert!(
            err.to_string().contains("retired"),
            "error must name the retired encoding: {err}"
        );
        recover(&dir).expect_err("recovery must surface the rejection");
        let _ = fs::remove_dir_all(&dir);
    }
}
