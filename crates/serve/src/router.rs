//! The router client of the sharded serving tier: hash-routes updates to
//! their owning shards' queues.
//!
//! A [`ShardRouter`] is the sharded counterpart of [`crate::UpdateClient`].
//! Feature updates go to the owner of the rewritten vertex; edge updates go
//! to the owner of **both** endpoints (once, when one shard owns both) —
//! each owner applies the topology change to its halo-restricted graph, and
//! only the source's owner emits the resulting value deltas, mirroring how
//! the distributed engine routes halo stubs.
//!
//! Shard queues are unbounded (halo sends between workers must never
//! block), so producer backpressure lives here: every shard carries a depth
//! counter, and a submission first clears [`ServeConfig::queue_capacity`]
//! on *every* route — blocking or shedding per the configured policy —
//! before enqueueing anywhere. A cross-shard edge update is therefore
//! accepted by all of its owners or by none.

use crate::metrics::ServeMetrics;
use crate::scheduler::{BackpressurePolicy, QueuedUpdate, Submission};
use crate::shard::ShardMsg;
use ripple_graph::partition::Partitioning;
use ripple_graph::{GraphUpdate, PartitionId, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(doc)]
use crate::scheduler::ServeConfig;

/// How long a blocked submission sleeps between depth re-checks.
const BLOCK_BACKOFF: Duration = Duration::from_micros(50);

/// Cloneable producer handle hash-routing updates into a sharded session.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    txs: Vec<Sender<ShardMsg>>,
    depths: Vec<Arc<AtomicUsize>>,
    alive: Vec<Arc<AtomicBool>>,
    /// Per-shard accepted-update counters (an update counts at every shard
    /// it routes to — the staleness denominator of that shard's reads).
    submitted: Vec<Arc<AtomicU64>>,
    /// Per-shard count of **secondary** route copies: the second delivery
    /// of a cross-shard edge update. Merged reads subtract these so one
    /// logical update pending at both owners counts once in their
    /// deduplicated staleness.
    secondary_submitted: Vec<Arc<AtomicU64>>,
    /// Raw accepted submissions across the tier (each counted once).
    total_submitted: Arc<AtomicU64>,
    partitioning: Arc<Partitioning>,
    metrics: Arc<ServeMetrics>,
    policy: BackpressurePolicy,
    queue_capacity: usize,
}

impl ShardRouter {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        txs: Vec<Sender<ShardMsg>>,
        depths: Vec<Arc<AtomicUsize>>,
        alive: Vec<Arc<AtomicBool>>,
        submitted: Vec<Arc<AtomicU64>>,
        secondary_submitted: Vec<Arc<AtomicU64>>,
        total_submitted: Arc<AtomicU64>,
        partitioning: Arc<Partitioning>,
        metrics: Arc<ServeMetrics>,
        policy: BackpressurePolicy,
        queue_capacity: usize,
    ) -> Self {
        ShardRouter {
            txs,
            depths,
            alive,
            submitted,
            secondary_submitted,
            total_submitted,
            partitioning,
            metrics,
            policy,
            queue_capacity,
        }
    }

    /// Number of shards this router fans out over.
    pub fn num_shards(&self) -> usize {
        self.txs.len()
    }

    /// The owning shard of `v`. A vertex beyond the partitioned id space
    /// (e.g. an invalid update) is routed by hash so the owning engine
    /// reports the error exactly like the single-engine path would.
    fn owner(&self, v: VertexId) -> PartitionId {
        let num_parts = self.txs.len();
        self.partitioning
            .assignment()
            .get(v.index())
            .copied()
            .unwrap_or(PartitionId((v.index() % num_parts) as u32))
    }

    /// The shards `update` must reach: feature rewrites go to the vertex
    /// owner; edge changes to both endpoint owners (deduplicated).
    fn routes(&self, update: &GraphUpdate) -> (PartitionId, Option<PartitionId>) {
        match update {
            GraphUpdate::UpdateFeature { vertex, .. } => (self.owner(*vertex), None),
            GraphUpdate::AddEdge { src, dst, .. } | GraphUpdate::DeleteEdge { src, dst } => {
                let a = self.owner(*src);
                let b = self.owner(*dst);
                (a, (b != a).then_some(b))
            }
        }
    }

    /// Submits one update, honouring the configured backpressure policy
    /// across every shard it routes to.
    pub fn submit(&self, update: GraphUpdate) -> Submission {
        let (first, second) = self.routes(&update);
        let targets = [Some(first), second];
        // Clear backpressure on every route before enqueueing anywhere, so
        // a cross-shard update is accepted by all owners or by none.
        for part in targets.iter().flatten() {
            let i = part.index();
            match self.policy {
                BackpressurePolicy::Shed => {
                    if !self.alive[i].load(Ordering::Acquire) {
                        return Submission::Closed;
                    }
                    if self.depths[i].load(Ordering::Acquire) >= self.queue_capacity {
                        self.metrics.record_shed();
                        return Submission::Shed;
                    }
                }
                BackpressurePolicy::Block => loop {
                    if !self.alive[i].load(Ordering::Acquire) {
                        return Submission::Closed;
                    }
                    if self.depths[i].load(Ordering::Acquire) < self.queue_capacity {
                        break;
                    }
                    std::thread::sleep(BLOCK_BACKOFF);
                },
            }
        }
        let enqueued = Instant::now();
        for (route, part) in targets.iter().flatten().enumerate() {
            let i = part.index();
            // The second route of an edge update is the duplicate delivery;
            // mark it so flushes and staleness stamps can dedup by logical
            // update.
            let secondary = route == 1;
            let queued = QueuedUpdate {
                update: update.clone(),
                enqueued,
                secondary,
            };
            // Count the slot before sending: the worker decrements as it
            // dequeues, and the counter must never underflow.
            self.depths[i].fetch_add(1, Ordering::AcqRel);
            if self.txs[i].send(ShardMsg::Update(queued)).is_err() {
                self.depths[i].fetch_sub(1, Ordering::AcqRel);
                return Submission::Closed;
            }
            self.submitted[i].fetch_add(1, Ordering::Relaxed);
            if secondary {
                self.secondary_submitted[i].fetch_add(1, Ordering::Relaxed);
            }
            self.metrics.record_enqueued();
        }
        let seq = self.total_submitted.fetch_add(1, Ordering::Relaxed) + 1;
        Submission::Enqueued { seq }
    }

    /// Submits every update of a batch in order; stops at the first
    /// non-enqueued outcome and returns it together with the number of
    /// accepted updates.
    pub fn submit_all<I: IntoIterator<Item = GraphUpdate>>(
        &self,
        updates: I,
    ) -> (usize, Submission) {
        let mut accepted = 0;
        let mut last = Submission::Enqueued { seq: 0 };
        for update in updates {
            last = self.submit(update);
            match last {
                Submission::Enqueued { .. } => accepted += 1,
                _ => return (accepted, last),
            }
        }
        (accepted, last)
    }
}
